(* K-Means clustering (paper Algorithms 7/15). The distance computation
   D = rowSums(T²)·1 + 1·colSums(C²) − 2·T·C is vectorized exactly as in
   the paper, so the factorized instantiation exercises the element-wise
   exponentiation, aggregation, and LMM/transposed-LMM rewrites —
   full matrix-matrix multiplications, "a key benefit of the generality
   of our approach" (§4). *)

open La

module Make (M : Morpheus.Data_matrix.S) = struct
  type result = {
    centroids : Dense.t; (* d×k *)
    assignments : int array; (* cluster id per row of T *)
    objective : float; (* sum of squared distances to assigned centroid *)
  }

  (* Initialize centroids from the data deterministically: spread k seed
     rows of T across the row range. [select_rows] keeps the extraction
     factorized (and O(k·d) instead of the dense n×k one-hot selector's
     O(n·d·k)); the k×k identity converts the k selected rows to a d×k
     dense column block through the signature. *)
  let init_centroids t k =
    let n = M.rows t in
    let idx = Array.init k (fun j -> j * (n / k)) in
    M.tlmm (M.select_rows t idx) (Dense.identity k)

  (* Extract row [i] of T as a d×1 column through the signature. *)
  let row_of t i = M.tlmm (M.select_rows t [| i |]) (Dense.make 1 1 1.0)

  (* K-Means++ seeding (Arthur & Vassilvitskii): each next centroid is
     sampled ∝ squared distance to the nearest chosen one. Distances are
     computed with the same vectorized identity as the training loop, so
     the whole procedure runs factorized on normalized inputs. *)
  let init_plus_plus ?(rng = Rng.of_int 0) t k =
    let n = M.rows t in
    (* rowSums(T²) through the factorized rewrite — no T² materialized,
       and memoized on t, so training right after seeding reuses it. *)
    let dt = M.row_sums_sq t in
    (* the 2·(T·C) form: doubling after the multiply is exact in floating
       point, so no scaled copy 2T of the matrix is ever built *)
    let chosen = ref [ row_of t (Rng.int rng n) ] in
    while List.length !chosen < k do
      let c = List.hd !chosen in
      (* squared distance of every point to the latest centroid *)
      let c2 = Dense.sum (Dense.pow_scalar c 2.0) in
      let tc = M.lmm t c in
      let d2 =
        Dense.init n 1 (fun i _ ->
            Float.max 0.0
              (Dense.get dt i 0 +. c2 -. (2.0 *. Dense.get tc i 0)))
      in
      (* running minimum across all chosen centroids *)
      let min_d2 =
        match !chosen with
        | [ _ ] -> d2
        | _ ->
          (* recompute against all chosen: keep it simple and exact *)
          let all = Dense.hcat (List.map Fun.id !chosen) in
          let c2s = Dense.col_sums (Dense.pow_scalar all 2.0) in
          let tcs = M.lmm t all in
          Dense.init n 1 (fun i _ ->
              let best = ref infinity in
              for j = 0 to Dense.cols all - 1 do
                let v =
                  Dense.get dt i 0 +. Dense.get c2s 0 j
                  -. (2.0 *. Dense.get tcs i j)
                in
                if v < !best then best := v
              done ;
              Float.max 0.0 !best)
      in
      (* sample ∝ min_d2 *)
      let total = Dense.sum min_d2 in
      let next =
        if total <= 0.0 then Rng.int rng n
        else begin
          let target = Rng.float rng *. total in
          let acc = ref 0.0 and pick = ref (n - 1) in
          (try
             for i = 0 to n - 1 do
               acc := !acc +. Dense.get min_d2 i 0 ;
               if !acc >= target then begin
                 pick := i ;
                 raise Exit
               end
             done
           with Exit -> ()) ;
          !pick
        end
      in
      chosen := row_of t next :: !chosen
    done ;
    Dense.hcat (List.rev !chosen)

  (* The distance fill shared by training and serving: writes the n×k
     pairwise squared distances rowSums(T²)·1 + 1·colSums(C²) − 2·T·C
     into [d]. One code path keeps assignment bitwise-identical whether
     a row is scored inside [train], alone, or inside a server batch. *)
  let fill_distances t ~dt ~c ~d =
    let n = M.rows t and k = Dense.cols c in
    let c2 = Dense.col_sums (Dense.pow_scalar c 2.0) in
    let tc = M.lmm t c in
    let dd = Dense.data d
    and dtd = Dense.data dt
    and c2d = Dense.data c2
    and tcd = Dense.data tc in
    for i = 0 to n - 1 do
      let base = i * k in
      let dti = Array.unsafe_get dtd i in
      for j = 0 to k - 1 do
        Array.unsafe_set dd (base + j)
          (dti +. Array.unsafe_get c2d j
          -. (2.0 *. Array.unsafe_get tcd (base + j)))
      done
    done

  let distances t c =
    if Dense.rows c <> M.cols t then
      invalid_arg "Kmeans.distances: centroid rows must equal data columns" ;
    let d = Dense.create (M.rows t) (Dense.cols c) in
    fill_distances t ~dt:(M.row_sums_sq t) ~c ~d ;
    d

  let assign t c = Dense.row_argmins (distances t c)

  let train ?(iters = 20) ?centroids ?on_iter ~k t =
    let n = M.rows t in
    let c = ref (match centroids with Some c -> Dense.copy c | None -> init_centroids t k) in
    (* 1. Pre-compute squared l2-norms of the points, rowSums(T²),
       through the factorized rewrite (no T² is materialized). Hoisted
       out of the loop AND memoized on t, so even a later [train] call
       on the same matrix skips it. The 2·T scaling of the paper's
       identity is folded into the distance loop below (doubling after
       the multiply is exact in floating point), so no scaled copy of
       the data matrix is ever built. *)
    let dt = M.row_sums_sq t in
    let assignments = ref [||] in
    let objective = ref 0.0 in
    (* workspaces reused across iterations: distances and the one-hot
       assignment matrix *)
    let d = Dense.create n k in
    let a = Dense.create n k in
    for it = 1 to iters do
      (* 2. Pairwise squared distances D (n×k) =
         rowSums(T²)·1 + 1·colSums(C²) − 2·T·C *)
      fill_distances t ~dt ~c:!c ~d ;
      (* 3. Assign points to the nearest centroid: A (n×k) boolean *)
      let args = Dense.row_argmins d in
      assignments := args ;
      objective := 0.0 ;
      Array.iteri (fun i j -> objective := !objective +. Dense.get d i j) args ;
      Dense.fill a 0.0 ;
      let ad = Dense.data a in
      Array.iteri (fun i j -> Array.unsafe_set ad ((i * k) + j) 1.0) args ;
      (* 4. New centroids: (TᵀA) / counts *)
      let ta = M.tlmm t a in
      let counts = Dense.col_sums a in
      c :=
        Dense.init (M.cols t) k (fun i j ->
            let cnt = Dense.get counts 0 j in
            if cnt > 0.0 then Dense.get ta i j /. cnt else Dense.get !c i j) ;
      Validate.check_array ~stage:"kmeans.step" (Dense.data !c) ;
      (match on_iter with Some f -> f it !c | None -> ())
    done ;
    { centroids = !c; assignments = !assignments; objective = !objective }
end
