(* Logistic regression with gradient descent (paper Algorithms 3/4).
   Written once against the abstract data-matrix signature; applying the
   functor to [Morpheus.Factorized_matrix] yields exactly the paper's
   factorized Algorithm 4 — the LMM rewrite fires on T·w and the
   transposed-LMM rewrite on Tᵀ·P — with no change to this code. *)

open La

module Make (M : Morpheus.Data_matrix.S) = struct
  type model = {
    w : Dense.t; (* d×1 weights *)
    losses : float list; (* per-iteration logistic loss (most recent last) *)
  }

  (* Logistic loss sum log(1 + exp(-y·s)) for labels y ∈ {-1, +1}. *)
  let loss scores y =
    let n = Dense.rows scores in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      let s = Dense.get scores i 0 and yi = Dense.get y i 0 in
      acc := !acc +. Stdlib.log (1.0 +. Stdlib.exp (-.yi *. s))
    done ;
    !acc /. float_of_int n

  (* The paper's iteration: w ← w + α · Tᵀ(Y / (1 + exp(T·w))).
     With labels in {-1,+1} folded into Y this is plain gradient descent
     on the logistic loss. *)
  let train ?(alpha = 1e-4) ?(iters = 20) ?w0 ?(record_loss = false) ?on_iter
      t y =
    let d = M.cols t in
    if Dense.rows y <> M.rows t || Dense.cols y <> 1 then
      invalid_arg "Logreg.train: bad target shape" ;
    let w = match w0 with Some w -> Dense.copy w | None -> Dense.create d 1 in
    let losses = ref [] in
    (* gradient-weight workspace, reused every iteration *)
    let p = Dense.create (Dense.rows y) 1 in
    let pd = Dense.data p and yd = Dense.data y in
    for it = 1 to iters do
      let scores = M.lmm t w in
      if record_loss then losses := loss scores y :: !losses ;
      (* P = Y / (1 + exp(Y·scores)) — the gradient weights *)
      let sd = Dense.data scores in
      for i = 0 to Array.length pd - 1 do
        let yi = Array.unsafe_get yd i in
        Array.unsafe_set pd i
          (yi /. (1.0 +. Stdlib.exp (yi *. Array.unsafe_get sd i)))
      done ;
      let grad = M.tlmm t p in
      (* w ← w + α·grad in place (bitwise-identical to add∘scale) *)
      Dense.axpy ~alpha grad w ;
      (* a diverged step must name itself, not poison later products *)
      Validate.check_array ~stage:"logreg.step" (Dense.data w) ;
      match on_iter with Some f -> f it w | None -> ()
    done ;
    { w; losses = List.rev !losses }

  let predict t model = M.lmm t model.w

  (* Classification accuracy against ±1 labels. *)
  let accuracy t model y =
    let scores = predict t model in
    let n = Dense.rows scores in
    let correct = ref 0 in
    for i = 0 to n - 1 do
      let s = Dense.get scores i 0 and yi = Dense.get y i 0 in
      if (s >= 0.0 && yi > 0.0) || (s < 0.0 && yi < 0.0) then incr correct
    done ;
    float_of_int !correct /. float_of_int n
end
