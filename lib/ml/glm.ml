(* Generalized linear models with gradient descent, factorized through
   the data-matrix signature. The paper's factorized-learning line
   ([26]) targets GLMs as a family; this functor generalizes the
   Algorithm 3/4 pattern to any member whose gradient weights are an
   element-wise function of (score, target):

     w ← w + α · Tᵀ · g(T·w, Y)

   with g per family:
     logistic  g(s, y) = y / (1 + exp(y·s))          (labels ±1)
     gaussian  g(s, y) = y − s                       (least squares)
     poisson   g(s, y) = y − exp(s)                  (log link)

   Only T·w and Tᵀ·p touch the data matrix, so every family factorizes
   identically. *)

open La

type family = Logistic | Gaussian | Poisson | Hinge

(* Stable names for manifests and wire formats (the serving layer's
   model registry); [family_of_string] is total over these. *)
let family_to_string = function
  | Logistic -> "logistic"
  | Gaussian -> "gaussian"
  | Poisson -> "poisson"
  | Hinge -> "hinge"

let family_of_string = function
  | "logistic" -> Some Logistic
  | "gaussian" -> Some Gaussian
  | "poisson" -> Some Poisson
  | "hinge" -> Some Hinge
  | _ -> None

let all_families = [ Logistic; Gaussian; Poisson; Hinge ]

let gradient_weight family ~score ~y =
  match family with
  | Logistic -> y /. (1.0 +. Stdlib.exp (y *. score))
  | Gaussian -> y -. score
  | Poisson -> y -. Stdlib.exp score
  | Hinge -> if y *. score < 1.0 then y else 0.0

(* Per-example negative log-likelihood (up to constants), for tests and
   convergence monitoring. *)
let nll family ~score ~y =
  match family with
  | Logistic -> Stdlib.log (1.0 +. Stdlib.exp (-.y *. score))
  | Gaussian -> 0.5 *. ((y -. score) ** 2.0)
  | Poisson -> Stdlib.exp score -. (y *. score)
  | Hinge -> Float.max 0.0 (1.0 -. (y *. score))

module Make (M : Morpheus.Data_matrix.S) = struct
  type model = { family : family; w : Dense.t }

  let mean_nll family scores y =
    let n = Dense.rows scores in
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc :=
        !acc +. nll family ~score:(Dense.get scores i 0) ~y:(Dense.get y i 0)
    done ;
    !acc /. float_of_int n

  let gradient family t w y =
    let scores = M.lmm t w in
    let p = Dense.create (Dense.rows scores) 1 in
    let pd = Dense.data p and sd = Dense.data scores and yd = Dense.data y in
    for i = 0 to Array.length pd - 1 do
      Array.unsafe_set pd i
        (gradient_weight family ~score:(Array.unsafe_get sd i)
           ~y:(Array.unsafe_get yd i))
    done ;
    M.tlmm t p

  let train ?(alpha = 1e-4) ?(iters = 20) ?w0 ?on_iter ~family t y =
    if Dense.rows y <> M.rows t || Dense.cols y <> 1 then
      invalid_arg "Glm.train: bad target shape" ;
    let w = match w0 with Some w -> Dense.copy w | None -> Dense.create (M.cols t) 1 in
    for it = 1 to iters do
      (* w ← w + α·grad in place (bitwise-identical to add∘scale) *)
      Dense.axpy ~alpha (gradient family t w y) w ;
      (* a diverged step (e.g. poisson's exp overflowing) must name
         itself instead of poisoning later products *)
      Validate.check_array ~stage:"glm.step" (Dense.data w) ;
      match on_iter with Some f -> f it w | None -> ()
    done ;
    { family; w }

  let predict_scores t model = M.lmm t model.w

  (* Mean response under the family's inverse link. *)
  let predict_mean t model =
    let scores = predict_scores t model in
    match model.family with
    | Gaussian -> scores
    | Logistic -> Dense.map (fun s -> 1.0 /. (1.0 +. Stdlib.exp (-.s))) scores
    | Poisson -> Dense.map Stdlib.exp scores
    | Hinge -> Dense.map (fun s -> if s >= 0.0 then 1.0 else -1.0) scores

  let loss t model y = mean_nll model.family (predict_scores t model) y
end
