(** Generalized linear models with gradient descent: the Algorithm 3/4
    pattern [w ← w + α·Tᵀ·g(T·w, Y)] for any family whose gradient
    weight g is element-wise in (score, target). Only T·w and Tᵀ·p touch
    the data matrix, so every family factorizes identically. *)

open La

type family =
  | Logistic  (** labels ±1; g(s,y) = y/(1+exp(y·s)) *)
  | Gaussian  (** least squares; g(s,y) = y − s *)
  | Poisson  (** log link; g(s,y) = y − exp(s) *)
  | Hinge  (** linear SVM subgradient; labels ±1; loss = hinge *)

val family_to_string : family -> string
(** Stable lowercase name ("logistic", …) for manifests and wire
    formats (the model registry persists it). *)

val family_of_string : string -> family option

val all_families : family list

val gradient_weight : family -> score:float -> y:float -> float

val nll : family -> score:float -> y:float -> float
(** Per-example negative log-likelihood (up to constants). *)

module Make (M : Morpheus.Data_matrix.S) : sig
  type model = { family : family; w : Dense.t }

  val gradient : family -> M.t -> Dense.t -> Dense.t -> Dense.t
  (** Tᵀ·g(T·w, Y). *)

  val train :
    ?alpha:float -> ?iters:int -> ?w0:Dense.t ->
    ?on_iter:(int -> Dense.t -> unit) -> family:family ->
    M.t -> Dense.t -> model
  (** [on_iter i w] observes the live weights after iteration [i]
      (1-based) — the checkpoint hook; resuming from [w0] with the
      remaining iteration count is bitwise-identical to the
      uninterrupted run. Raises {!La.Validate.Numeric_error} if a
      step produces a non-finite weight. *)

  val predict_scores : M.t -> model -> Dense.t

  val predict_mean : M.t -> model -> Dense.t
  (** Mean response under the family's inverse link. *)

  val loss : M.t -> model -> Dense.t -> float
  (** Mean NLL. *)
end
