(** K-fold cross-validation over normalized matrices: folds are
    factorized row subsets (shared attribute tables), so the
    factorized-ML benefit compounds across folds. *)

open La
open Morpheus

val fold_indices : ?seed:int -> k:int -> int -> int array list
(** A shuffled partition of [0, n) into [k] near-equal folds. *)

val split :
  Normalized.t -> Dense.t -> int array list -> int ->
  (Normalized.t * Dense.t) * (Normalized.t * Dense.t)
(** [(train, validation)] matrices and targets for one held-out fold. *)

type 'model fold_result = {
  model : 'model;
  train_score : float;
  val_score : float;
}

val cross_validate :
  ?seed:int ->
  k:int ->
  fit:(Normalized.t -> Dense.t -> 'model) ->
  score:('model -> Normalized.t -> Dense.t -> float) ->
  Normalized.t ->
  Dense.t ->
  'model fold_result list

val mean_val_score : 'model fold_result list -> float

val select_ridge_lambda :
  ?seed:int -> ?k:int -> lambdas:float list -> Normalized.t -> Dense.t ->
  float * float * (float * float) list
(** Ridge λ selection by CV: (best λ, its mean validation MSE, all
    candidates with scores). *)
