(** Gaussian non-negative matrix factorization (paper Algorithms 8/16):
    multiplicative updates H ← H∗(TᵀW)/(H·cp(W)),
    W ← W∗(T·H)/(W·cp(H)). *)

open La

module Make (M : Morpheus.Data_matrix.S) : sig
  type factors = {
    w : Dense.t;  (** n×r *)
    h : Dense.t;  (** d×r *)
  }

  val init : ?rng:Rng.t -> M.t -> int -> factors
  (** Strictly positive deterministic initialization. *)

  val train :
    ?iters:int ->
    ?init:factors ->
    ?on_iter:(int -> factors -> unit) ->
    rank:int ->
    M.t ->
    factors
  (** [on_iter i f] observes the live factors after iteration [i]
      (1-based) — the checkpoint hook; [f] aliases the training
      buffers, so copy before storing. Resuming from [init] with the
      remaining iteration count is bitwise-identical to the
      uninterrupted run. Raises {!La.Validate.Numeric_error} if an
      update produces a non-finite factor. *)

  val reconstruction_error : M.t -> factors -> float
  (** ‖T − W·Hᵀ‖²_F computed without materializing W·Hᵀ:
      ‖T‖² − 2·tr(HᵀTᵀW) + tr(cp(W)·cp(H)). *)
end
