(* Gaussian Naive Bayes over normalized matrices. Training needs only
   per-class feature means and variances — per-class column statistics
   of T — and each class's row subset is a factorized normalized matrix
   ([Normalized.select_rows] shares the attribute tables), so the
   sufficient statistics come from Colops.col_means / col_stds without
   materializing anything: an ML algorithm the prior factorized-ML
   systems did not cover, expressible entirely in this framework. *)

open La
open Morpheus

type class_stats = {
  label : float;
  prior : float;
  mean : float array; (* per feature *)
  variance : float array; (* per feature, floored *)
}

type model = { classes : class_stats list; d : int }

let variance_floor = 1e-9

let feature_dim model = model.d

(* Rebuild a model from persisted class statistics (the registry's
   load path), re-validating the invariants [train] guarantees. *)
let make ~d classes =
  if d <= 0 then invalid_arg "Naive_bayes.make: non-positive dimension" ;
  if List.length classes < 2 then
    invalid_arg "Naive_bayes.make: need at least two classes" ;
  List.iter
    (fun c ->
      if Array.length c.mean <> d || Array.length c.variance <> d then
        invalid_arg "Naive_bayes.make: class statistics width mismatch" ;
      if c.prior <= 0.0 || c.prior > 1.0 then
        invalid_arg "Naive_bayes.make: prior out of (0, 1]" ;
      if Array.exists (fun v -> v < variance_floor) c.variance then
        invalid_arg "Naive_bayes.make: variance below floor")
    classes ;
  { classes; d }

(* Distinct labels in order of first appearance. *)
let distinct_labels y =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  Array.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v () ;
        order := v :: !order
      end)
    y ;
  List.rev !order

let train t y =
  let n = Normalized.rows t in
  if Dense.rows y <> n || Dense.cols y <> 1 then
    invalid_arg "Naive_bayes.train: bad target shape" ;
  let y_arr = Dense.col_to_array y in
  let labels = distinct_labels y_arr in
  if List.length labels < 2 then
    invalid_arg "Naive_bayes.train: need at least two classes" ;
  let classes =
    List.map
      (fun label ->
        let idx =
          Array.of_list
            (List.filter
               (fun i -> y_arr.(i) = label)
               (List.init n Fun.id))
        in
        let t_c = Normalized.select_rows t idx in
        let mean = Dense.row_to_array (Colops.col_means t_c) in
        let std = Dense.row_to_array (Colops.col_stds t_c) in
        { label;
          prior = float_of_int (Array.length idx) /. float_of_int n;
          mean;
          variance = Array.map (fun s -> Float.max variance_floor (s *. s)) std })
      labels
  in
  { classes; d = Normalized.cols t }

(* Log joint log p(c) + Σⱼ log N(xⱼ | μ, σ²) for one example row. *)
let log_joint stats x =
  let acc = ref (Stdlib.log stats.prior) in
  Array.iteri
    (fun j v ->
      let var = stats.variance.(j) in
      let diff = v -. stats.mean.(j) in
      acc :=
        !acc
        -. (0.5 *. Stdlib.log (2.0 *. Float.pi *. var))
        -. (diff *. diff /. (2.0 *. var)))
    x ;
  !acc

(* Predict labels for the rows of a (dense) feature matrix. Prediction
   is O(n·d·#classes) on the examples being scored, which are typically
   few; scoring the full normalized matrix materializes row by row. *)
let predict_dense model x =
  if Dense.cols x <> model.d then invalid_arg "Naive_bayes.predict: bad width" ;
  Array.init (Dense.rows x) (fun i ->
      let row = Dense.row x i in
      let best =
        List.fold_left
          (fun (bl, bs) stats ->
            let s = log_joint stats row in
            if s > bs then (stats.label, s) else (bl, bs))
          (nan, neg_infinity) model.classes
      in
      fst best)

(* Score the normalized matrix itself, streaming one row at a time via
   select_rows so only a 1×d slice is ever materialized. *)
let predict model t =
  let n = Normalized.rows t in
  Array.init n (fun i ->
      let row = Materialize.to_dense (Normalized.select_rows t [| i |]) in
      (predict_dense model row).(0))

let accuracy model t y =
  let preds = predict model t in
  let y_arr = Dense.col_to_array y in
  let correct = ref 0 in
  Array.iteri (fun i p -> if p = y_arr.(i) then incr correct) preds ;
  float_of_int !correct /. float_of_int (Array.length preds)
