(** Training checkpoints: atomic per-iteration snapshots of trainer
    state, persisted through {!Morpheus.Io}'s framed-payload API
    (tmp+rename, so a crash mid-save leaves the previous checkpoint
    intact — a checkpoint file is always either the old complete state
    or the new complete state).

    A snapshot records which algorithm produced it, how many
    iterations are done, and the named matrices that fully determine
    the rest of the run (weights, centroids, factors). Because every
    iterative trainer's loop body depends only on its current state —
    never on the iteration index — resuming means re-invoking the
    trainer with the checkpointed matrices as the initial state and
    the remaining iteration count: the resumed run is bitwise-identical
    to the uninterrupted one. *)

open La

type mat = { rows : int; cols : int; data : float array }

type state = {
  algorithm : string;  (** e.g. ["logreg"]; checked on resume *)
  completed : int;  (** iterations finished when the snapshot was taken *)
  total : int;  (** iterations the full run targets *)
  mats : (string * mat) list;  (** named state matrices *)
  scalars : (string * float) list;  (** extra named state, e.g. alpha *)
}

val of_dense : Dense.t -> mat
(** Snapshot a matrix (copies the data — safe to call on live training
    buffers from an [on_iter] hook). *)

val to_dense : mat -> Dense.t
(** Rebuild a fresh matrix (copies). *)

val save : path:string -> state -> unit
(** Atomically persist the snapshot. Raises [Invalid_argument] on an
    inconsistent state (negative counts, shape/data mismatch,
    non-finite values) — a corrupt snapshot must never reach disk. *)

val load : path:string -> (state, string) result
(** Read and re-validate a snapshot. A missing file, foreign or
    truncated payload, inconsistent shapes, or non-finite values all
    report as [Error] — never as a crash or a garbage resume. *)

val exists : path:string -> bool

val dense : state -> string -> Dense.t option
(** Look up a named matrix and rebuild it. *)

val scalar : state -> string -> float option
