(* Mini-batch stochastic gradient descent over a *normalized* matrix —
   the paper's footnote 2 flags SGD as future work because it "updates
   the model after each example or mini-batch from T"; with
   Normalized.select_rows a mini-batch of T is itself a (small)
   normalized matrix that shares R, so each step runs the factorized
   LMM/tlmm rewrites on the batch: factorized SGD.

   This module is deliberately specific to Morpheus's normalized type
   (not the abstract signature): batch extraction is the point. *)

open La
open Morpheus

type config = {
  batch_size : int;
  alpha : float; (* step size *)
  epochs : int;
  seed : int;
}

let default_config = { batch_size = 256; alpha = 1e-3; epochs = 3; seed = 0 }

(* Shuffled epoch order of row indices. *)
let epoch_order rng n =
  let order = Array.init n Fun.id in
  Rng.shuffle rng order ;
  order

(* Factorized mini-batch GD for a GLM family. Each batch b:
     w ← w + α · T_bᵀ · g(T_b·w, Y_b)
   where T_b = select_rows t b shares the attribute matrices. *)
let train ?(config = default_config) ~family t y =
  let n = Normalized.rows t in
  if Dense.rows y <> n then invalid_arg "Minibatch.train: bad target shape" ;
  let rng = Rng.of_int config.seed in
  let w = Dense.create (Normalized.cols t) 1 in
  let y_arr = Dense.col_to_array y in
  for _ = 1 to config.epochs do
    let order = epoch_order rng n in
    let pos = ref 0 in
    while !pos < n do
      let b = min config.batch_size (n - !pos) in
      let idx = Array.sub order !pos b in
      pos := !pos + b ;
      let t_b = Normalized.select_rows t idx in
      let y_b = Dense.of_col_array (Array.map (fun i -> y_arr.(i)) idx) in
      let scores = Rewrite.lmm t_b w in
      let p =
        Dense.init b 1 (fun i _ ->
            Glm.gradient_weight family ~score:(Dense.get scores i 0)
              ~y:(Dense.get y_b i 0))
      in
      let grad = Rewrite.tlmm t_b p in
      (* w ← w + (α/b)·grad in place (bitwise-identical to add∘scale) *)
      Dense.axpy ~alpha:(config.alpha /. float_of_int b) grad w
    done
  done ;
  w
