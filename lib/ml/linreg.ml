(* Least-squares linear regression, three ways, matching the paper:
   - normal equations (Algorithms 5/6): w = ginv(crossprod(T))·(TᵀY),
     where the factorized instantiation runs Algorithm 2's efficient
     cross-product;
   - gradient descent (appendix Algorithms 11/12): w ← w − α·Tᵀ(Tw − Y);
   - the Schleich et al. SIGMOD'16 hybrid (appendix Algorithms 13/14):
     build the co-factor matrix C = [YᵀT; crossprod(T)] once, then run
     AdaGrad touching only C. *)

open La

module Make (M : Morpheus.Data_matrix.S) = struct
  (* ---- normal equations ---- *)

  let train_normal t y =
    if Dense.rows y <> M.rows t || Dense.cols y <> 1 then
      invalid_arg "Linreg.train_normal: bad target shape" ;
    let cp = M.crossprod t in
    let tty = M.tlmm t y in
    Blas.gemm (Linalg.ginv_sym cp) tty

  (* ---- gradient descent ---- *)

  let train_gd ?(alpha = 1e-6) ?(iters = 20) ?w0 ?on_iter t y =
    let d = M.cols t in
    let w = match w0 with Some w -> Dense.copy w | None -> Dense.create d 1 in
    for it = 1 to iters do
      let scores = M.lmm t w in
      (* residual in place of the scores buffer (map2_into allows the
         out/input alias), then w ← w − α·grad without temporaries *)
      Dense.map2_into ( -. ) scores y ~out:scores ;
      let grad = M.tlmm t scores in
      Dense.axpy ~alpha:(-.alpha) grad w ;
      Validate.check_array ~stage:"linreg.step" (Dense.data w) ;
      match on_iter with Some f -> f it w | None -> ()
    done ;
    w

  (* ---- co-factor + AdaGrad hybrid (Schleich et al.) ---- *)

  (* C = [YᵀT; crossprod(T)]: a (d+1)×d matrix whose rows contain the
     sufficient statistics of the least-squares objective. *)
  let cofactor t y =
    let yt = M.rmm (Dense.transpose y) t in
    Dense.vcat [ yt; M.crossprod t ]

  (* AdaGrad over the co-factor only: gradient of ½‖Tw − Y‖² is
     (crossprod T)·w − TᵀY = Cᵀ·[−1; w]. *)
  let train_cofactor ?(alpha = 1e-2) ?(iters = 20) ?w0 t y =
    let d = M.cols t in
    let c = cofactor t y in
    let w = match w0 with Some w -> Dense.copy w | None -> Dense.create d 1 in
    let g2 = Array.make d 1e-12 in
    let wd = Dense.data w in
    for _ = 1 to iters do
      let v = Dense.vcat [ Dense.make 1 1 (-1.0); w ] in
      let grad = Blas.tgemm c v in
      (* AdaGrad step applied in place: w ← w − α·g/√(Σg²) *)
      let gd = Dense.data grad in
      for i = 0 to d - 1 do
        let g = Array.unsafe_get gd i in
        g2.(i) <- g2.(i) +. (g *. g) ;
        Array.unsafe_set wd i
          (Array.unsafe_get wd i -. (alpha *. g /. sqrt g2.(i)))
      done
    done ;
    w

  (* Residual sum of squares, for tests and loss curves. *)
  let rss t w y =
    let r = Dense.sub (M.lmm t w) y in
    Dense.sum (Dense.mul_elem r r)
end
