(** K-Means clustering (paper Algorithms 7/15), vectorized exactly as in
    the paper: D = rowSums(T²)·1 + 1·colSums(C²) − 2·T·C, boolean
    assignment matrix, centroid update (TᵀA)/counts. The factorized
    instantiation exercises element-wise exponentiation, aggregations,
    and full matrix-matrix LMM/transposed-LMM rewrites. *)

open La

module Make (M : Morpheus.Data_matrix.S) : sig
  type result = {
    centroids : Dense.t;  (** d×k *)
    assignments : int array;  (** cluster id per data row *)
    objective : float;  (** Σ squared distance to assigned centroid *)
  }

  val init_centroids : M.t -> int -> Dense.t
  (** Deterministic seeding: k rows of T spread across the row range. *)

  val row_of : M.t -> int -> Dense.t
  (** Row [i] of T as a d×1 column, extracted through the signature. *)

  val init_plus_plus : ?rng:Rng.t -> M.t -> int -> Dense.t
  (** K-Means++ seeding: each next centroid sampled proportionally to
      the squared distance from the nearest chosen one; the distance
      computations run factorized on normalized inputs. *)

  val distances : M.t -> Dense.t -> Dense.t
  (** [distances t c] is the n×k pairwise squared-distance matrix of
      T's rows against the d×k centroids [c] — the training loop's
      exact distance computation, exposed for scoring a trained model
      (the serving layer's K-Means path). *)

  val assign : M.t -> Dense.t -> int array
  (** Nearest-centroid id per row, [Dense.row_argmins] of
      {!distances} — bitwise-identical to the assignment [train]
      computes with the same centroids. *)

  val train :
    ?iters:int ->
    ?centroids:Dense.t ->
    ?on_iter:(int -> Dense.t -> unit) ->
    k:int ->
    M.t ->
    result
  (** [on_iter i c] observes the centroids after iteration [i]
      (1-based) — the checkpoint hook; resuming from [centroids] with
      the remaining iteration count is bitwise-identical to the
      uninterrupted run. Raises {!La.Validate.Numeric_error} if an
      update produces a non-finite centroid. *)
end
