(* Trainer snapshots over Io's framed payloads. Validation runs on both
   save and load: the save-side check catches a diverged trainer before
   it overwrites a good checkpoint; the load-side check refuses litter
   left by a different program or a flipped bit that Marshal happened
   to survive. *)

open La

type mat = { rows : int; cols : int; data : float array }

type state = {
  algorithm : string;
  completed : int;
  total : int;
  mats : (string * mat) list;
  scalars : (string * float) list;
}

let kind = "train-checkpoint"

let of_dense m =
  { rows = Dense.rows m; cols = Dense.cols m; data = Array.copy (Dense.data m) }

let to_dense { rows; cols; data } = Dense.of_array ~rows ~cols (Array.copy data)

let validate st =
  if st.completed < 0 then Error "checkpoint: negative completed count"
  else if st.total < st.completed then
    Error
      (Printf.sprintf "checkpoint: %d iterations completed of %d total"
         st.completed st.total)
  else
    let rec check = function
      | [] -> Ok ()
      | (name, m) :: rest ->
        if m.rows < 0 || m.cols < 0 || Array.length m.data <> m.rows * m.cols
        then
          Error
            (Printf.sprintf "checkpoint: matrix %S has %d values for %dx%d"
               name (Array.length m.data) m.rows m.cols)
        else (
          match Validate.scan m.data with
          | Some i ->
            Error
              (Printf.sprintf
                 "checkpoint: non-finite value in matrix %S at index %d" name i)
          | None -> check rest)
    in
    if
      List.exists
        (fun (_, v) -> not (Float.is_finite v))
        st.scalars
    then Error "checkpoint: non-finite scalar"
    else check st.mats

let save ~path st =
  (match validate st with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Checkpoint.save: " ^ msg)) ;
  Morpheus.Io.write_payload ~kind path st

let load ~path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no checkpoint at %s" path)
  else
    match (Morpheus.Io.read_payload ~kind path : state) with
    | exception Morpheus.Io.Corrupt msg -> Error msg
    | exception Sys_error msg -> Error msg
    | st -> ( match validate st with Ok () -> Ok st | Error _ as e -> e)

let exists ~path = Sys.file_exists path

let dense st name = Option.map to_dense (List.assoc_opt name st.mats)

let scalar st name = List.assoc_opt name st.scalars
