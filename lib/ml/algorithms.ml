(* Pre-applied instantiations of the four ML functors, one per execution
   path. [Materialized.*] is the paper's "M" (standard single-table
   script over the join output); [Factorized.*] is Morpheus's
   automatically factorized "F"; [Adaptive.*] puts the heuristic
   decision rule in front, which is the full system of Figure 1(c). *)

module Materialized = struct
  module Logreg = Logreg.Make (Morpheus.Regular_matrix)
  module Linreg = Linreg.Make (Morpheus.Regular_matrix)
  module Kmeans = Kmeans.Make (Morpheus.Regular_matrix)
  module Gnmf = Gnmf.Make (Morpheus.Regular_matrix)
  module Glm = Glm.Make (Morpheus.Regular_matrix)
end

module Factorized = struct
  module Logreg = Logreg.Make (Morpheus.Factorized_matrix)
  module Linreg = Linreg.Make (Morpheus.Factorized_matrix)
  module Kmeans = Kmeans.Make (Morpheus.Factorized_matrix)
  module Gnmf = Gnmf.Make (Morpheus.Factorized_matrix)
  module Glm = Glm.Make (Morpheus.Factorized_matrix)
end

module Adaptive = struct
  module Logreg = Logreg.Make (Morpheus.Adaptive_matrix)
  module Linreg = Linreg.Make (Morpheus.Adaptive_matrix)
  module Kmeans = Kmeans.Make (Morpheus.Adaptive_matrix)
  module Gnmf = Gnmf.Make (Morpheus.Adaptive_matrix)
  module Glm = Glm.Make (Morpheus.Adaptive_matrix)
end
