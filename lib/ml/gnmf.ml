(* Gaussian non-negative matrix factorization (paper Algorithms 8/16):
   multiplicative updates
     H ← H ∗ (TᵀW) / (H·crossprod(W))
     W ← W ∗ (T·H) / (W·crossprod(H))
   The factorized instantiation rewrites the RMM/LMM pair WᵀT and T·H;
   like K-Means these are full matrix-matrix multiplications. *)

open La

module Make (M : Morpheus.Data_matrix.S) = struct
  type factors = {
    w : Dense.t; (* n×r *)
    h : Dense.t; (* d×r *)
  }

  (* Deterministic strictly-positive initialization. *)
  let init ?(rng = Rng.of_int 42) t r =
    let n = M.rows t and d = M.cols t in
    let pos rows cols =
      Dense.init rows cols (fun _ _ -> 0.1 +. Rng.float rng)
    in
    { w = pos n r; h = pos d r }

  let eps = 1e-12

  let train ?(iters = 20) ?init:factors ~rank t =
    let { w; h } = match factors with Some f -> f | None -> init t rank in
    let w = ref w and h = ref h in
    for _ = 1 to iters do
      (* multiplicative update out = cur * num / (den + eps), fused *)
      let update cur num den =
        let out = Dense.create (Dense.rows cur) (Dense.cols cur) in
        let od = Dense.data out
        and cd = Dense.data cur
        and nd = Dense.data num
        and dd = Dense.data den in
        for i = 0 to Array.length od - 1 do
          Array.unsafe_set od i
            (Array.unsafe_get cd i *. Array.unsafe_get nd i
            /. (Array.unsafe_get dd i +. eps))
        done ;
        out
      in
      (* H update: P = (WᵀT)ᵀ = TᵀW *)
      let p = M.tlmm t !w in
      let denom_h = Blas.gemm !h (Blas.crossprod !w) in
      h := update !h p denom_h ;
      (* W update: P = T·H *)
      let p = M.lmm t !h in
      let denom_w = Blas.gemm !w (Blas.crossprod !h) in
      w := update !w p denom_w
    done ;
    { w = !w; h = !h }

  (* Frobenius reconstruction error ‖T − W·Hᵀ‖²_F, computed without
     materializing W·Hᵀ when T is normalized:
     ‖T‖² − 2·tr(HᵀTᵀW) + tr(cp(W)·cp(H)). *)
  let reconstruction_error t { w; h } =
    let t_norm = M.sum (M.pow t 2.0) in
    let tw = M.tlmm t w (* d×r *) in
    let cross = ref 0.0 in
    Dense.iteri (fun i j v -> cross := !cross +. (v *. Dense.get h i j)) tw ;
    let cpw = Blas.crossprod w and cph = Blas.crossprod h in
    let trace = ref 0.0 in
    Dense.iteri (fun i j v -> trace := !trace +. (v *. Dense.get cph j i)) cpw ;
    t_norm -. (2.0 *. !cross) +. !trace
end
