(* Gaussian non-negative matrix factorization (paper Algorithms 8/16):
   multiplicative updates
     H ← H ∗ (TᵀW) / (H·crossprod(W))
     W ← W ∗ (T·H) / (W·crossprod(H))
   The factorized instantiation rewrites the RMM/LMM pair WᵀT and T·H;
   like K-Means these are full matrix-matrix multiplications. *)

open La

module Make (M : Morpheus.Data_matrix.S) = struct
  type factors = {
    w : Dense.t; (* n×r *)
    h : Dense.t; (* d×r *)
  }

  (* Deterministic strictly-positive initialization. *)
  let init ?(rng = Rng.of_int 42) t r =
    let n = M.rows t and d = M.cols t in
    let pos rows cols =
      Dense.init rows cols (fun _ _ -> 0.1 +. Rng.float rng)
    in
    { w = pos n r; h = pos d r }

  let eps = 1e-12

  (* Multiplicative update out = cur * num / (den + eps), fused.
     Element-wise with per-index reads only, so [out] may alias [cur]. *)
  let update_into cur num den ~out =
    let od = Dense.data out
    and cd = Dense.data cur
    and nd = Dense.data num
    and dd = Dense.data den in
    for i = 0 to Array.length od - 1 do
      Array.unsafe_set od i
        (Array.unsafe_get cd i *. Array.unsafe_get nd i
        /. (Array.unsafe_get dd i +. eps))
    done

  let train ?(iters = 20) ?init:factors ?on_iter ~rank t =
    (* Copy incoming factors: the loop below updates them in place, and
       the caller's matrices must stay untouched. *)
    let w, h =
      match factors with
      | Some f -> (Dense.copy f.w, Dense.copy f.h)
      | None ->
        let f = init t rank in
        (f.w, f.h)
    in
    (* denominator workspaces, reused across iterations *)
    let denom_h = Dense.create (Dense.rows h) (Dense.cols h) in
    let denom_w = Dense.create (Dense.rows w) (Dense.cols w) in
    for it = 1 to iters do
      (* H update: P = (WᵀT)ᵀ = TᵀW *)
      let p = M.tlmm t w in
      Blas.gemm_into h (Blas.crossprod w) ~c:denom_h ;
      update_into h p denom_h ~out:h ;
      (* W update: P = T·H *)
      let p = M.lmm t h in
      Blas.gemm_into w (Blas.crossprod h) ~c:denom_w ;
      update_into w p denom_w ~out:w ;
      Validate.check_array ~stage:"gnmf.step" (Dense.data w) ;
      Validate.check_array ~stage:"gnmf.step" (Dense.data h) ;
      (* the record aliases the live buffers; checkpointers must copy *)
      match on_iter with Some f -> f it { w; h } | None -> ()
    done ;
    { w; h }

  (* Frobenius reconstruction error ‖T − W·Hᵀ‖²_F, computed without
     materializing W·Hᵀ when T is normalized:
     ‖T‖² − 2·tr(HᵀTᵀW) + tr(cp(W)·cp(H)). *)
  let reconstruction_error t { w; h } =
    let t_norm = M.sum (M.pow t 2.0) in
    let tw = M.tlmm t w (* d×r *) in
    let cross = ref 0.0 in
    Dense.iteri (fun i j v -> cross := !cross +. (v *. Dense.get h i j)) tw ;
    let cpw = Blas.crossprod w and cph = Blas.crossprod h in
    let trace = ref 0.0 in
    Dense.iteri (fun i j v -> trace := !trace +. (v *. Dense.get cph j i)) cpw ;
    t_norm -. (2.0 *. !cross) +. !trace
end
