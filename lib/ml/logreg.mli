(** Logistic regression with gradient descent (paper Algorithms 3/4).
    Written once against the abstract data-matrix signature: applying
    the functor to [Morpheus.Regular_matrix] gives the standard
    single-table algorithm, to [Morpheus.Factorized_matrix] exactly the
    paper's factorized Algorithm 4 — with no change to the algorithm. *)

open La

module Make (M : Morpheus.Data_matrix.S) : sig
  type model = {
    w : Dense.t;  (** d×1 weights *)
    losses : float list;  (** per-iteration logistic loss, if recorded *)
  }

  val loss : Dense.t -> Dense.t -> float
  (** Mean logistic loss of scores against ±1 labels. *)

  val train :
    ?alpha:float -> ?iters:int -> ?w0:Dense.t -> ?record_loss:bool ->
    ?on_iter:(int -> Dense.t -> unit) ->
    M.t -> Dense.t -> model
  (** The paper's iteration [w ← w + α·Tᵀ(Y / (1 + exp(T·w)))] with
    labels in {-1, +1}. [on_iter i w] observes the live weights after
    iteration [i] (1-based) — the checkpoint hook: the loop body only
    depends on the current weights, so resuming from [w0] with the
    remaining iteration count is bitwise-identical to the
    uninterrupted run. Raises {!La.Validate.Numeric_error} if a step
    produces a non-finite weight. *)

  val predict : M.t -> model -> Dense.t

  val accuracy : M.t -> model -> Dense.t -> float
  (** Sign agreement with ±1 labels. *)
end
