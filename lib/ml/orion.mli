(** Reimplementation of Orion's factorized learning for GLMs (Kumar et
    al., SIGMOD 2015) — the algorithm-specific comparator of Table 8.
    Unlike Morpheus it stores partial inner products over R in an
    associative array (Hashtbl) keyed by RID, reproducing the hashing
    overheads the paper measures. Dense features, single PK-FK join. *)

open La
open Sparse

val logreg_iteration :
  alpha:float -> s:Dense.t -> k:Indicator.t -> r:Dense.t -> y:Dense.t ->
  Dense.t -> Dense.t
(** One factorized gradient-descent step over (S, K, R). *)

val train_logreg :
  ?alpha:float -> ?iters:int -> ?w0:Dense.t ->
  s:Dense.t -> k:Indicator.t -> r:Dense.t -> y:Dense.t -> unit -> Dense.t
