(* Join machinery. This is the substrate step the paper's §3.1/§3.6
   describe: instead of materializing T = S ⋈ R, build the indicator
   matrices (K for PK-FK, I_S/I_R for M:N) that the normalized matrix
   carries. The materializing joins are also provided — they are the
   baseline "M" path and the ground truth for tests. *)

open Sparse

(* ---- PK-FK ---- *)

(* Row numbers of R indexed by primary-key value. *)
let pk_index r ~pk =
  let tbl = Hashtbl.create (Table.nrows r) in
  let col = Table.column r pk in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem tbl v then
        invalid_arg
          (Printf.sprintf "Join.pk_index: duplicate primary key %s"
             (Value.to_string v)) ;
      Hashtbl.add tbl v i)
    col ;
  tbl

(* The indicator matrix K of §3.1 for S ⋈_{fk = pk} R: K[i, j] = 1 iff
   S.fk of row i equals the pk of R's row j. Raises if a foreign key is
   dangling (the paper assumes referential integrity). *)
let pkfk_indicator s ~fk r ~pk =
  let idx = pk_index r ~pk in
  let col = Table.column s fk in
  let mapping =
    Array.map
      (fun v ->
        match Hashtbl.find_opt idx v with
        | Some j -> j
        | None ->
          invalid_arg
            (Printf.sprintf "Join.pkfk_indicator: dangling key %s"
               (Value.to_string v)))
      col
  in
  Indicator.create ~cols:(Table.nrows r) mapping

(* Drop R tuples never referenced by S and re-map K accordingly
   (pre-processing of §3.1: "we can remove from R all the tuples that are
   never referred to in S"). Returns the trimmed R and indicator. *)
let trim_unreferenced s ~fk r ~pk =
  let k = pkfk_indicator s ~fk r ~pk in
  let counts = Indicator.col_counts k in
  let keep =
    Array.of_list
      (List.filter
         (fun j -> counts.(j) > 0.0)
         (List.init (Table.nrows r) Fun.id))
  in
  if Array.length keep = Table.nrows r then (r, k)
  else begin
    let new_index = Array.make (Table.nrows r) (-1) in
    Array.iteri (fun new_j old_j -> new_index.(old_j) <- new_j) keep ;
    let mapping =
      Array.map (fun j -> new_index.(j)) (Indicator.mapping k)
    in
    (Table.select_rows r keep, Indicator.create ~cols:(Array.length keep) mapping)
  end

(* Materialized PK-FK join: π(S ⋈ R) keeping all of S's columns and R's
   non-key columns, in S-row order (the T table of §2). *)
let materialize_pkfk s ~fk r ~pk =
  let k = pkfk_indicator s ~fk r ~pk in
  let r_cols =
    List.filter
      (fun n -> not (String.equal n pk))
      (Schema.names (Table.schema r))
  in
  let r_proj = Table.project r r_cols in
  let s_schema = Table.schema s in
  let schema =
    Schema.create ~table_name:(Table.name s ^ "_join_" ^ Table.name r)
      (s_schema.Schema.columns @ (Table.schema r_proj).Schema.columns)
  in
  let rows =
    List.init (Table.nrows s) (fun i ->
        Array.append (Table.row s i)
          (Table.row r_proj (Indicator.col_of_row k i)))
  in
  Table.of_rows schema rows

(* ---- M:N ---- *)

(* General equi-join S ⋈_{js = jr} R. Computes T' = π(S) ⋈ π(R) with
   non-deduplicating projections (§3.6) and returns the two indicator
   matrices (I_S, I_R): row t of the join output is (S row I_S(t),
   R row I_R(t)). Output rows are ordered by S row then R row. *)
let mn_indicators s ~js r ~jr =
  let by_key = Hashtbl.create (Table.nrows r) in
  let jr_col = Table.column r jr in
  Array.iteri
    (fun j v ->
      let prev = Option.value (Hashtbl.find_opt by_key v) ~default:[] in
      Hashtbl.replace by_key v (j :: prev))
    jr_col ;
  Hashtbl.iter (fun k v -> Hashtbl.replace by_key k (List.rev v)) by_key ;
  let js_col = Table.column s js in
  let is_rev = ref [] and ir_rev = ref [] and count = ref 0 in
  Array.iteri
    (fun i v ->
      match Hashtbl.find_opt by_key v with
      | None -> ()
      | Some rjs ->
        List.iter
          (fun j ->
            is_rev := i :: !is_rev ;
            ir_rev := j :: !ir_rev ;
            incr count)
          rjs)
    js_col ;
  let is_map = Array.of_list (List.rev !is_rev) in
  let ir_map = Array.of_list (List.rev !ir_rev) in
  ( Indicator.create ~cols:(Table.nrows s) is_map,
    Indicator.create ~cols:(Table.nrows r) ir_map )

(* Drop S and R tuples that contribute to no output tuple, per §3.6. *)
let mn_trim s ~js r ~jr =
  let is_, ir = mn_indicators s ~js r ~jr in
  let trim tbl ind =
    let counts = Indicator.col_counts ind in
    let keep =
      Array.of_list
        (List.filter
           (fun j -> counts.(j) > 0.0)
           (List.init (Table.nrows tbl) Fun.id))
    in
    if Array.length keep = Table.nrows tbl then (tbl, ind)
    else begin
      let new_index = Array.make (Table.nrows tbl) (-1) in
      Array.iteri (fun nj oj -> new_index.(oj) <- nj) keep ;
      let mapping = Array.map (fun j -> new_index.(j)) (Indicator.mapping ind) in
      (Table.select_rows tbl keep, Indicator.create ~cols:(Array.length keep) mapping)
    end
  in
  let s', is' = trim s is_ in
  let r', ir' = trim r ir in
  (s', is', r', ir')

(* ---- multi-table M:N chains (appendix E) ----

   T = R₁ ⋈ R₂ ⋈ … ⋈ R_q with equi-join conditions linking consecutive
   tables: conditions.(j) = (column of R_{j+1}, column of R_{j+2}).
   Returns one indicator matrix per table, so the normalized matrix is
   (I_R1, …, I_Rq, R₁, …, R_q) with T = [I_R1·R₁, …, I_Rq·R_q]. Output
   tuples are ordered lexicographically by (row of R₁, row of R₂, …). *)
let chain_indicators tables conditions =
  let tables = Array.of_list tables in
  let q = Array.length tables in
  if List.length conditions <> q - 1 then
    invalid_arg "Join.chain_indicators: need one condition per adjacent pair" ;
  (* paths.(t) = reversed list of row ids through tables 0..current *)
  let paths = ref (List.init (Table.nrows tables.(0)) (fun i -> [ i ])) in
  List.iteri
    (fun j (left_col, right_col) ->
      let left = tables.(j) and right = tables.(j + 1) in
      let by_key = Hashtbl.create (Table.nrows right) in
      Array.iteri
        (fun r v ->
          let prev = Option.value (Hashtbl.find_opt by_key v) ~default:[] in
          Hashtbl.replace by_key v (r :: prev))
        (Table.column right right_col) ;
      Hashtbl.iter (fun k v -> Hashtbl.replace by_key k (List.rev v)) by_key ;
      let left_vals = Table.column left left_col in
      paths :=
        List.concat_map
          (fun path ->
            let cur = List.hd path in
            match Hashtbl.find_opt by_key left_vals.(cur) with
            | None -> []
            | Some rs -> List.map (fun r -> r :: path) rs)
          !paths)
    conditions ;
  let out = Array.of_list (List.map (fun p -> Array.of_list (List.rev p)) !paths) in
  List.init q (fun j ->
      Indicator.create ~cols:(Table.nrows tables.(j))
        (Array.map (fun path -> path.(j)) out))

(* Materialized multi-table chain join, same row order. *)
let materialize_chain tables conditions =
  let inds = chain_indicators tables conditions in
  let tables_a = Array.of_list tables in
  let schema =
    Schema.create
      ~table_name:
        (String.concat "_chain_" (List.map Table.name tables))
      (List.concat_map (fun t -> (Table.schema t).Schema.columns) tables)
  in
  let n = Indicator.rows (List.hd inds) in
  let rows =
    List.init n (fun t ->
        Array.concat
          (List.mapi
             (fun j ind -> Table.row tables_a.(j) (Indicator.col_of_row ind t))
             inds))
  in
  Table.of_rows schema rows

(* Materialized M:N join with the same row order as [mn_indicators]. *)
let materialize_mn s ~js r ~jr =
  let is_, ir = mn_indicators s ~js r ~jr in
  let schema =
    Schema.create ~table_name:(Table.name s ^ "_mnjoin_" ^ Table.name r)
      ((Table.schema s).Schema.columns @ (Table.schema r).Schema.columns)
  in
  let n = Indicator.rows is_ in
  let rows =
    List.init n (fun t ->
        Array.append
          (Table.row s (Indicator.col_of_row is_ t))
          (Table.row r (Indicator.col_of_row ir t)))
  in
  Table.of_rows schema rows
