(** Column roles and schemas: which column is the key, which are
    numeric/nominal features (nominal get one-hot encoded, as the paper
    does for the real datasets), and which is the ML target Y. *)

type role =
  | Primary_key
  | Foreign_key of string  (** name of the referenced table *)
  | Numeric_feature
  | Nominal_feature
  | Target
  | Ignored

type column = { name : string; role : role }

type t = { table_name : string; columns : column list }

val create : table_name:string -> column list -> t
val column : name:string -> role:role -> column

val names : t -> string list

val find : t -> string -> column
(** Raises [Invalid_argument] on unknown names. *)

val index_of : t -> string -> int

val columns_with_role : t -> role -> column list

val primary_key : t -> string
(** Raises unless exactly one primary key is declared. *)

val foreign_keys : t -> (string * string) list
(** [(column, referenced table)] pairs. *)

val feature_columns : t -> column list
(** Numeric and nominal features, in declaration order. *)

val target : t -> string option
(** Raises if several targets are declared. *)
