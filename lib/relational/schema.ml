(* Column types and schemas. A schema describes a base table in a
   normalized database: which column is the primary key, which are
   foreign keys, which are numeric features, which are nominal features
   (to be one-hot encoded, as the paper does for the real datasets), and
   which is the ML target Y. *)

type role =
  | Primary_key
  | Foreign_key of string (* name of the referenced table *)
  | Numeric_feature
  | Nominal_feature
  | Target
  | Ignored

type column = { name : string; role : role }

type t = { table_name : string; columns : column list }

let create ~table_name columns = { table_name; columns }

let column ~name ~role = { name; role }

let names t = List.map (fun c -> c.name) t.columns

let find t name =
  match List.find_opt (fun c -> String.equal c.name name) t.columns with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "Schema.find: no column %s in %s" name t.table_name)

let index_of t name =
  let rec go i = function
    | [] ->
      invalid_arg
        (Printf.sprintf "Schema.index_of: no column %s in %s" name
           t.table_name)
    | c :: rest -> if String.equal c.name name then i else go (i + 1) rest
  in
  go 0 t.columns

let columns_with_role t role =
  List.filter (fun c -> c.role = role) t.columns

let primary_key t =
  match columns_with_role t Primary_key with
  | [ c ] -> c.name
  | [] -> invalid_arg ("Schema: no primary key in " ^ t.table_name)
  | _ -> invalid_arg ("Schema: multiple primary keys in " ^ t.table_name)

let foreign_keys t =
  List.filter_map
    (fun c ->
      match c.role with Foreign_key target -> Some (c.name, target) | _ -> None)
    t.columns

let feature_columns t =
  List.filter
    (fun c -> c.role = Numeric_feature || c.role = Nominal_feature)
    t.columns

let target t =
  match columns_with_role t Target with
  | [ c ] -> Some c.name
  | [] -> None
  | _ -> invalid_arg ("Schema: multiple targets in " ^ t.table_name)
