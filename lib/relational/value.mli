(** Cell values for the relational substrate: numeric and nominal
    (categorical) features plus integer keys — all the joins and
    encoders need. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string

val to_string : t -> string

val of_string : string -> t
(** Parses ints, then floats, then falls back to strings; blank input
    is [Null]. *)

val to_float : t -> float
(** [Null] is 0; raises on non-numeric strings. *)

val to_int : t -> int
(** Accepts exact-integer floats; raises otherwise. *)

val equal : t -> t -> bool
(** Numeric equality crosses [Int]/[Float]. *)

val compare : t -> t -> int

val hash : t -> int
(** Consistent with {!equal} (ints hash as their float value). *)

val pp : Format.formatter -> t -> unit
