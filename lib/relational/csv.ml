(* Minimal CSV reader/writer (RFC-4180 quoting for the cases our data
   produces). The paper's §3.2 snippet starts from read.csv("S.csv");
   this module is that entry point. *)

let split_line line =
  let buf = Buffer.create 16 in
  let fields = ref [] in
  let in_quotes = ref false in
  let n = String.length line in
  let i = ref 0 in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"' ;
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else if c = '"' then in_quotes := true
    else if c = ',' then begin
      fields := Buffer.contents buf :: !fields ;
      Buffer.clear buf
    end
    else Buffer.add_char buf c ;
    incr i
  done ;
  fields := Buffer.contents buf :: !fields ;
  List.rev !fields

let escape_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* Read a CSV with a header line into (header, rows of values). *)
let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match In_channel.input_line ic with
        | Some line -> split_line line
        | None -> invalid_arg ("Csv.read: empty file " ^ path)
      in
      let rows = ref [] in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" -> loop ()
        | Some line ->
          rows :=
            Array.of_list (List.map Value.of_string (split_line line))
            :: !rows ;
          loop ()
      in
      loop () ;
      (header, List.rev !rows))

(* Read a CSV into a table, assigning roles via [role_of] on the header
   names (defaults to numeric features). *)
let read_table ?(role_of = fun _ -> Schema.Numeric_feature) ~table_name path =
  let header, rows = read path in
  let schema =
    Schema.create ~table_name
      (List.map (fun n -> Schema.column ~name:n ~role:(role_of n)) header)
  in
  Table.of_rows schema rows

let write_table path table =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (String.concat ","
           (List.map escape_field (Schema.names (Table.schema table)))) ;
      output_char oc '\n' ;
      for i = 0 to Table.nrows table - 1 do
        let row = Table.row table i in
        output_string oc
          (String.concat ","
             (Array.to_list
                (Array.map (fun v -> escape_field (Value.to_string v)) row))) ;
        output_char oc '\n'
      done)
