(* Cell values for the relational substrate. The paper's pipelines start
   from base tables with numeric and nominal (categorical) features plus
   integer keys; this small algebra is all the joins and encoders need. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string

let to_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.12g" f
  | String s -> s

let of_string s =
  let s = String.trim s in
  if s = "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> String s)

let to_float = function
  | Null -> 0.0
  | Int i -> float_of_int i
  | Float f -> f
  | String s -> (
    match float_of_string_opt s with
    | Some f -> f
    | None -> invalid_arg ("Value.to_float: non-numeric " ^ s))

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | v -> invalid_arg ("Value.to_int: " ^ to_string v)

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | String x, String y -> String.equal x y
  | _ -> false

let compare a b =
  let rank = function Null -> 0 | Int _ | Float _ -> 1 | String _ -> 2 in
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | a, b -> Stdlib.compare (rank a) (rank b)

let hash = function
  | Null -> 0
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let pp ppf v = Fmt.string ppf (to_string v)
