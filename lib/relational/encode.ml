(* Feature encoding: turn a table's feature columns into a matrix.
   Numeric features map to one column each; nominal features are one-hot
   encoded, which is how the paper's real datasets become "sparse feature
   matrices to handle nominal features" (§5, Table 6). *)

open La
open Sparse

type feature_map = {
  (* for each encoded output column: (source column, optional category) *)
  output_names : string array;
  width : int;
}

(* Distinct categories of a column in first-appearance order. *)
let categories col =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v (Hashtbl.length seen) ;
        order := v :: !order
      end)
    col ;
  (seen, Array.of_list (List.rev !order))

(* Encode the feature columns of [table] into a matrix. [sparse] forces a
   CSR result (always advisable when nominal features are present). *)
let features ?(sparse = false) table =
  let cols = Schema.feature_columns (Table.schema table) in
  let n = Table.nrows table in
  let blocks =
    List.map
      (fun (c : Schema.column) ->
        let data = Table.column table c.Schema.name in
        match c.Schema.role with
        | Schema.Numeric_feature ->
          let names = [| c.Schema.name |] in
          let triplets = ref [] in
          Array.iteri
            (fun i v ->
              let f = Value.to_float v in
              if f <> 0.0 then triplets := (i, 0, f) :: !triplets)
            data ;
          (names, Csr.of_triplets ~rows:n ~cols:1 !triplets)
        | Schema.Nominal_feature ->
          let index, order = categories data in
          let width = Array.length order in
          let names =
            Array.map
              (fun v -> c.Schema.name ^ "=" ^ Value.to_string v)
              order
          in
          let triplets = ref [] in
          Array.iteri
            (fun i v -> triplets := (i, Hashtbl.find index v, 1.0) :: !triplets)
            data ;
          (names, Csr.of_triplets ~rows:n ~cols:width !triplets)
        | _ -> assert false)
      cols
  in
  let names = Array.concat (List.map fst blocks) in
  let csr = Csr.hcat (List.map snd blocks) in
  let fmap = { output_names = names; width = Array.length names } in
  let mat =
    if sparse then Mat.of_csr csr else Mat.of_dense (Csr.to_dense csr)
  in
  (mat, fmap)

(* Extract the target column Y as an n×1 dense matrix. *)
let target table =
  match Schema.target (Table.schema table) with
  | None -> invalid_arg ("Encode.target: no target in " ^ Table.name table)
  | Some name ->
    Dense.of_col_array (Array.map Value.to_float (Table.column table name))

(* Binarize a numeric target at its median, for logistic regression on
   datasets whose target is numeric (paper §5: "numeric target features
   ... which we binarize for logistic regression"). Yields ±1 labels. *)
let binarize y =
  let v = Dense.col_to_array y in
  let sorted = Array.copy v in
  Array.sort compare sorted ;
  let median = sorted.(Array.length sorted / 2) in
  Dense.of_col_array
    (Array.map (fun x -> if x > median then 1.0 else -1.0) v)
