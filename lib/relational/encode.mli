(** Feature encoding: numeric columns map to one matrix column each,
    nominal columns are one-hot encoded — how the paper's real datasets
    become "sparse feature matrices" (Table 6). *)

open La
open Sparse

type feature_map = {
  output_names : string array;  (** encoded column names, e.g. ["Country=US"] *)
  width : int;
}

val features : ?sparse:bool -> Table.t -> Mat.t * feature_map
(** Encode a table's feature columns. [sparse] forces a CSR result. *)

val target : Table.t -> Dense.t
(** The declared target column as an n×1 matrix; raises if absent. *)

val binarize : Dense.t -> Dense.t
(** Median split into ±1 labels (the paper's treatment of numeric
    targets for logistic regression, §5). *)
