(** Join machinery: instead of materializing T = S ⋈ R, build the
    indicator matrices the normalized matrix carries (K for PK-FK,
    §3.1; I_S/I_R for M:N, §3.6; one per table for chains, appendix E).
    Materializing joins are also provided — the baseline "M" path and
    the ground truth for tests. *)

open Sparse

(** {1 PK-FK} *)

val pk_index : Table.t -> pk:string -> (Value.t, int) Hashtbl.t
(** Row numbers of R keyed by primary-key value; raises on duplicate
    keys. *)

val pkfk_indicator : Table.t -> fk:string -> Table.t -> pk:string -> Indicator.t
(** The K of §3.1 for S ⋈_{fk=pk} R; raises on dangling foreign keys. *)

val trim_unreferenced :
  Table.t -> fk:string -> Table.t -> pk:string -> Table.t * Indicator.t
(** Drop R tuples never referenced by S and re-map K (§3.1's
    pre-processing). Returns the trimmed R with its indicator. *)

val materialize_pkfk : Table.t -> fk:string -> Table.t -> pk:string -> Table.t
(** π(S ⋈ R) with S's columns and R's non-key columns, in S-row order. *)

(** {1 M:N} *)

val mn_indicators :
  Table.t -> js:string -> Table.t -> jr:string -> Indicator.t * Indicator.t
(** (I_S, I_R) for the general equi-join S ⋈_{js=jr} R (§3.6); output
    tuples ordered by (S row, R row). *)

val mn_trim :
  Table.t -> js:string -> Table.t -> jr:string ->
  Table.t * Indicator.t * Table.t * Indicator.t
(** Additionally drop S and R tuples contributing to no output tuple. *)

val materialize_mn : Table.t -> js:string -> Table.t -> jr:string -> Table.t

(** {1 Multi-table M:N chains (appendix E)} *)

val chain_indicators :
  Table.t list -> (string * string) list -> Indicator.t list
(** [chain_indicators \[R₁; …; R_q\] conditions] for the chain join
    R₁ ⋈ R₂ ⋈ … ⋈ R_q, where [conditions] links consecutive tables as
    [(column of Rⱼ, column of Rⱼ₊₁)]. Returns one indicator per table:
    T = [I_R1·R₁, …, I_Rq·R_q]. *)

val materialize_chain : Table.t list -> (string * string) list -> Table.t
