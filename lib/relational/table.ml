(* In-memory column-store tables: the entity table S and attribute tables
   R_i of the paper live here before being encoded into matrices. *)

type t = {
  schema : Schema.t;
  columns : Value.t array array; (* columns.(c).(row) *)
  nrows : int;
}

let schema t = t.schema
let nrows t = t.nrows
let ncols t = Array.length t.columns
let name t = t.schema.Schema.table_name

let create schema columns =
  let ncols = List.length schema.Schema.columns in
  if Array.length columns <> ncols then
    invalid_arg "Table.create: column count mismatch with schema" ;
  let nrows = if ncols = 0 then 0 else Array.length columns.(0) in
  Array.iter
    (fun col ->
      if Array.length col <> nrows then invalid_arg "Table.create: ragged")
    columns ;
  { schema; columns; nrows }

let of_rows schema rows =
  let ncols = List.length schema.Schema.columns in
  let nrows = List.length rows in
  let columns = Array.init ncols (fun _ -> Array.make nrows Value.Null) in
  List.iteri
    (fun i row ->
      if Array.length row <> ncols then invalid_arg "Table.of_rows: ragged" ;
      Array.iteri (fun c v -> columns.(c).(i) <- v) row)
    rows ;
  { schema; columns; nrows }

let column t name = t.columns.(Schema.index_of t.schema name)

let get t ~row ~col_name = (column t col_name).(row)

let row t i = Array.map (fun col -> col.(i)) t.columns

let rows t = List.init t.nrows (row t)

(* Keep only the rows at the given indices (used to drop tuples that do
   not contribute to the join output, §3.1 / §3.7). *)
let select_rows t idx =
  { t with
    columns = Array.map (fun col -> Array.map (fun i -> col.(i)) idx) t.columns;
    nrows = Array.length idx }

(* Project to a subset of columns (keeps schema roles). *)
let project t names =
  let cols =
    List.map (fun n -> Schema.find t.schema n) names
  in
  let schema = Schema.create ~table_name:(name t) cols in
  let columns = Array.of_list (List.map (fun n -> column t n) names) in
  { schema; columns; nrows = t.nrows }
