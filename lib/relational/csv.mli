(** Minimal CSV reader/writer (RFC-4180 quoting) — the paper's §3.2
    pipelines start from [read.csv]. *)

val split_line : string -> string list
(** Split one CSV record, honoring quotes and escaped quotes. *)

val escape_field : string -> string

val read : string -> string list * Value.t array list
(** [(header, rows)]; values are parsed with {!Value.of_string}. *)

val read_table :
  ?role_of:(string -> Schema.role) -> table_name:string -> string -> Table.t
(** Read into a table, assigning roles by header name (default:
    numeric features). *)

val write_table : string -> Table.t -> unit
