(** In-memory column-store tables: the entity table S and attribute
    tables Rᵢ before they are encoded into matrices. *)

type t

val schema : t -> Schema.t
val nrows : t -> int
val ncols : t -> int
val name : t -> string

val create : Schema.t -> Value.t array array -> t
(** From columns ([columns.(c).(row)]); raises on ragged input. *)

val of_rows : Schema.t -> Value.t array list -> t

val column : t -> string -> Value.t array
(** The named column (shared, do not mutate). *)

val get : t -> row:int -> col_name:string -> Value.t

val row : t -> int -> Value.t array

val rows : t -> Value.t array list

val select_rows : t -> int array -> t
(** Keep only the rows at the given indices (the §3.1/§3.7 trimming). *)

val project : t -> string list -> t
(** Keep only the named columns (roles preserved). *)
