(* A persistent pool of OCaml 5 domains executing indexed task batches.

   Domains are expensive to spawn (~ms each, plus minor-heap setup), so
   the pool spawns its workers once and keeps them parked on a condition
   variable between kernel calls; a parallel region then costs only a
   broadcast and an atomic fetch-and-add per task. This is the physical
   substrate of {!Exec.par}; kernels never talk to the pool directly.

   Scheduling is work-stealing-lite: a batch of [njobs] indexed tasks is
   published, and every participant (the [size - 1] workers plus the
   calling domain) claims indices from a shared atomic counter until the
   batch is drained. Tasks must therefore be safe to run in any order
   and on any domain — the deterministic chunk grids live one layer up,
   in {!Exec}.

   The caller side is single-domain by construction: {!run} is only ever
   reached from code that is not itself inside a parallel region
   ({!Exec} downgrades nested regions to sequential execution), so at
   most one batch is in flight per pool. *)

type job = {
  njobs : int;
  next : int Atomic.t;  (* next index to claim *)
  completed : int Atomic.t;  (* finished tasks, for the caller's wait *)
  run : int -> unit;
}

type t = {
  size : int;  (* participating domains, including the caller *)
  mutable job : job option;
  mutable gen : int;  (* batch generation, so workers join each batch once *)
  mutable stop : bool;
  mutable failure : exn option;  (* first task exception, re-raised by run *)
  lock : Analysis.Sync.t;
  work : Analysis.Sync.cond;  (* workers park here between batches *)
  idle : Analysis.Sync.cond;  (* the caller parks here until the batch drains *)
  mutable workers : unit Domain.t array;
}

let size t = t.size

let record_failure t e =
  Analysis.Sync.lock t.lock ;
  if t.failure = None then t.failure <- Some e ;
  Analysis.Sync.unlock t.lock

(* Claim and run tasks until the batch is exhausted. The completion
   count (not the claim counter) gates the caller's wake-up, so a task
   still running when the last index is claimed is always waited for. *)
let drain t (j : job) =
  let rec loop () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.njobs then begin
      (try
         Fault.point "pool.task" ;
         j.run i
       with e -> record_failure t e) ;
      let c = 1 + Atomic.fetch_and_add j.completed 1 in
      if c = j.njobs then begin
        Analysis.Sync.lock t.lock ;
        Analysis.Sync.broadcast t.idle ;
        Analysis.Sync.unlock t.lock
      end ;
      loop ()
    end
  in
  loop ()

let worker t () =
  let seen = ref 0 in
  let rec loop () =
    Analysis.Sync.lock t.lock ;
    while (not t.stop) && t.gen = !seen do
      Analysis.Sync.wait t.work t.lock
    done ;
    if t.stop then Analysis.Sync.unlock t.lock
    else begin
      seen := t.gen ;
      let j = t.job in
      Analysis.Sync.unlock t.lock ;
      (* [job] may already be back to [None] if the batch drained between
         our wake-up and the read; that is a completed batch, skip it. *)
      (match j with Some j -> drain t j | None -> ()) ;
      loop ()
    end
  in
  loop ()

(* Live pools, shut down via [at_exit] so worker domains never outlive
   the main domain (a parked worker would otherwise keep the runtime's
   domain machinery alive at exit). *)
let registry = ref []
let registry_lock = Analysis.Sync.create ~name:"la.pool.registry" ()

let shutdown t =
  Analysis.Sync.lock t.lock ;
  let first = not t.stop in
  t.stop <- true ;
  Analysis.Sync.broadcast t.work ;
  Analysis.Sync.unlock t.lock ;
  if first then Array.iter Domain.join t.workers

let () = at_exit (fun () -> List.iter shutdown !registry)

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1" ;
  let t =
    { size;
      job = None;
      gen = 0;
      stop = false;
      failure = None;
      lock = Analysis.Sync.create ~name:"la.pool" ();
      work = Analysis.Sync.condition ();
      idle = Analysis.Sync.condition ();
      workers = [||] }
  in
  t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker t)) ;
  Analysis.Sync.with_lock registry_lock (fun () -> registry := t :: !registry) ;
  t

let run t ~njobs f =
  if njobs < 0 then invalid_arg "Pool.run: negative njobs" ;
  if t.stop then invalid_arg "Pool.run: pool is shut down" ;
  (* Pool-contract check: a caller holding any Sync lock across the
     batch could deadlock against a task taking the same lock (E102
     under lockdep). *)
  Analysis.Sync.enter_parallel_region ~region:"La.Pool.run" ;
  if njobs > 0 then begin
    let j =
      { njobs; next = Atomic.make 0; completed = Atomic.make 0; run = f }
    in
    Analysis.Sync.lock t.lock ;
    t.failure <- None ;
    t.job <- Some j ;
    t.gen <- t.gen + 1 ;
    Analysis.Sync.broadcast t.work ;
    Analysis.Sync.unlock t.lock ;
    drain t j ;
    Analysis.Sync.lock t.lock ;
    while Atomic.get j.completed < njobs do
      Analysis.Sync.wait t.idle t.lock
    done ;
    t.job <- None ;
    let fail = t.failure in
    t.failure <- None ;
    Analysis.Sync.unlock t.lock ;
    match fail with Some e -> raise e | None -> ()
  end
