(** Naive reference kernels — the pre-blocking i-k-j triple loops,
    frozen as ground truth. {!Blas}'s cache-blocked kernels must be
    bitwise-identical to these at every shape, beta, backend, domain
    count, and tile profile; test/test_kernels.ml (the [@kernelcheck]
    alias) enforces it, and the kernel bench uses this module as the
    "naive" arm. Same signatures, same flop accounting, same [Exec]
    range contracts as {!Blas}. *)

val gemm : ?exec:Exec.t -> Dense.t -> Dense.t -> Dense.t
val tgemm : ?exec:Exec.t -> Dense.t -> Dense.t -> Dense.t
val gemm_nt : ?exec:Exec.t -> Dense.t -> Dense.t -> Dense.t
val crossprod : ?exec:Exec.t -> Dense.t -> Dense.t
val weighted_crossprod : ?exec:Exec.t -> Dense.t -> float array -> Dense.t
val tcrossprod : ?exec:Exec.t -> Dense.t -> Dense.t
val gemv : ?exec:Exec.t -> Dense.t -> float array -> float array

val gemm_into :
  ?exec:Exec.t -> ?beta:float -> Dense.t -> Dense.t -> c:Dense.t -> unit

val gemv_into :
  ?exec:Exec.t -> ?beta:float -> Dense.t -> float array -> y:float array -> unit
