(** A persistent pool of OCaml 5 domains. Workers are spawned once and
    parked between kernel calls; {!run} publishes a batch of indexed
    tasks that the workers and the calling domain drain together from a
    shared atomic counter. This is the physical substrate behind
    {!Exec.par} — kernels go through {!Exec}, never through the pool
    directly. *)

type t

val create : int -> t
(** [create size] spawns [size - 1] worker domains; the caller of {!run}
    is the [size]-th participant. Raises [Invalid_argument] when
    [size < 1]. Every pool is registered for [at_exit] shutdown. *)

val size : t -> int
(** Participating domains, including the caller. *)

val run : t -> njobs:int -> (int -> unit) -> unit
(** [run t ~njobs f] executes [f 0 … f (njobs - 1)], each exactly once,
    on any participating domain and in any order, returning when all
    have finished. Tasks must not themselves call [run] (the {!Exec}
    layer downgrades nested parallel regions to sequential execution).
    If tasks raise, the batch still drains and the first exception is
    re-raised in the caller. Single-caller: only one batch may be in
    flight per pool. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent; a pool is unusable
    after shutdown ({!Exec} transparently recreates one on next use). *)
