(* Dense row-major matrices over [float array]. This is the base "regular
   matrix" type of the whole system: the paper's R matrices. All heavy
   kernels live in {!Blas} and {!Linalg}; this module provides
   construction, access, shaping, element-wise maps and aggregations. *)

type t = { rows : int; cols : int; data : float array }

let rows m = m.rows
let cols m = m.cols
let dims m = (m.rows, m.cols)
let data m = m.data
let numel m = m.rows * m.cols

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Dense.create: negative dims" ;
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let make rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Dense.make: negative dims" ;
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      Array.unsafe_set data (base + j) (f i j)
    done
  done ;
  { rows; cols; data }

(* Wrap an existing row-major array without copying. The caller gives up
   ownership. *)
let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Dense.of_array: length mismatch" ;
  { rows; cols; data }

let zeros rows cols = create rows cols
let ones rows cols = make rows cols 1.0

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Dense.get: (%d,%d) out of %dx%d" i j m.rows m.cols) ;
  Array.unsafe_get m.data ((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Dense.set: (%d,%d) out of %dx%d" i j m.rows m.cols) ;
  Array.unsafe_set m.data ((i * m.cols) + j) x

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j x = Array.unsafe_set m.data ((i * m.cols) + j) x

let copy m = { m with data = Array.copy m.data }

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then create 0 0
  else begin
    let cols = Array.length a.(0) in
    Array.iter
      (fun r ->
        if Array.length r <> cols then
          invalid_arg "Dense.of_arrays: ragged rows")
      a ;
    init rows cols (fun i j -> a.(i).(j))
  end

let to_arrays m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

(* A column vector from a float array. *)
let of_col_array a =
  { rows = Array.length a; cols = 1; data = Array.copy a }

(* A row vector from a float array. *)
let of_row_array a =
  { rows = 1; cols = Array.length a; data = Array.copy a }

let col_to_array m =
  if m.cols <> 1 then invalid_arg "Dense.col_to_array: not a column vector" ;
  Array.copy m.data

let row_to_array m =
  if m.rows <> 1 then invalid_arg "Dense.row_to_array: not a row vector" ;
  Array.copy m.data

(* Copy of row [i] as a fresh array. *)
let row m i = Array.sub m.data (i * m.cols) m.cols

let col m j = Array.init m.rows (fun i -> unsafe_get m i j)

(* Rows [lo, hi) as a fresh matrix. Mirrors R's T[lo:hi, ]. *)
let sub_rows m ~lo ~hi =
  if lo < 0 || hi > m.rows || lo > hi then
    invalid_arg "Dense.sub_rows: bad range" ;
  { rows = hi - lo;
    cols = m.cols;
    data = Array.sub m.data (lo * m.cols) ((hi - lo) * m.cols) }

(* Columns [lo, hi) as a fresh matrix. Mirrors R's T[, lo:hi]. *)
let sub_cols m ~lo ~hi =
  if lo < 0 || hi > m.cols || lo > hi then
    invalid_arg "Dense.sub_cols: bad range" ;
  init m.rows (hi - lo) (fun i j -> unsafe_get m i (lo + j))

let transpose m = init m.cols m.rows (fun i j -> unsafe_get m j i)

(* Horizontal concatenation [A | B | ...]; all blocks share row count. *)
let hcat ms =
  match ms with
  | [] -> create 0 0
  | first :: _ ->
    let rows = first.rows in
    List.iter
      (fun m ->
        if m.rows <> rows then invalid_arg "Dense.hcat: row mismatch")
      ms ;
    let cols = List.fold_left (fun acc m -> acc + m.cols) 0 ms in
    let out = create rows cols in
    let off = ref 0 in
    List.iter
      (fun m ->
        for i = 0 to rows - 1 do
          Array.blit m.data (i * m.cols) out.data ((i * cols) + !off) m.cols
        done ;
        off := !off + m.cols)
      ms ;
    out

(* Vertical concatenation; all blocks share column count. *)
let vcat ms =
  match ms with
  | [] -> create 0 0
  | first :: _ ->
    let cols = first.cols in
    List.iter
      (fun m ->
        if m.cols <> cols then invalid_arg "Dense.vcat: col mismatch")
      ms ;
    let rows = List.fold_left (fun acc m -> acc + m.rows) 0 ms in
    let out = create rows cols in
    let off = ref 0 in
    List.iter
      (fun m ->
        Array.blit m.data 0 out.data (!off * cols) (m.rows * cols) ;
        off := !off + m.rows)
      ms ;
    out

(* Write block [b] into [m] with top-left corner (i0, j0), in place. *)
let blit_block ~src ~dst ~row ~col =
  if row + src.rows > dst.rows || col + src.cols > dst.cols then
    invalid_arg "Dense.blit_block: block out of range" ;
  for i = 0 to src.rows - 1 do
    Array.blit src.data (i * src.cols) dst.data
      (((row + i) * dst.cols) + col)
      src.cols
  done

let map f m = { m with data = Array.map f m.data }

let mapi f m =
  init m.rows m.cols (fun i j -> f i j (unsafe_get m i j))

let map2 f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Dense.map2: dim mismatch" ;
  { a with data = Array.map2 f a.data b.data }

let iteri f m =
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      f i j (unsafe_get m i j)
    done
  done

let fold f init m = Array.fold_left f init m.data

(* ---- element-wise scalar ops (paper §3.3.1 on regular matrices) ---- *)

let scale x m =
  Flops.add (numel m) ;
  map (fun v -> x *. v) m

let add_scalar x m =
  Flops.add (numel m) ;
  map (fun v -> x +. v) m

let pow_scalar m p =
  Flops.add (numel m) ;
  if p = 2.0 then map (fun v -> v *. v) m else map (fun v -> v ** p) m

let map_scalar f m =
  Flops.add (numel m) ;
  map f m

let exp m = map_scalar Stdlib.exp m
let log m = map_scalar Stdlib.log m

(* ---- element-wise matrix ops ---- *)

let binop name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg ("Dense." ^ name ^ ": dim mismatch") ;
  Flops.add (numel a) ;
  map2 f a b

let add a b = binop "add" ( +. ) a b
let sub a b = binop "sub" ( -. ) a b
let mul_elem a b = binop "mul_elem" ( *. ) a b
let div_elem a b = binop "div_elem" ( /. ) a b

(* ---- in-place / accumulating element-wise kernels ----

   Conventions (docs/PERFORMANCE.md §"_into kernels"): the destination
   is fully overwritten (or accumulated into) and must have exactly the
   source shape; element-wise destinations may alias an input (each
   element depends only on the same flat index). Bodies are
   range-parameterized over the flat buffer and run through {!Exec}
   like every other kernel — disjoint output ranges, so both backends
   are bitwise-identical. *)

(* One flop per element: below ~one-grain of elements the chunking
   overhead beats the work (same reasoning as Blas.min_rows). The
   grain comes from the tuned profile — 64k flops by default, measured
   dispatch-amortizing size once a sweep has run. *)
let elt_min_chunk () = Tune.grain ()

let fill m x = Array.fill m.data 0 (Array.length m.data) x

(* y += alpha·x. *)
let axpy ?exec ~alpha x y =
  if x.rows <> y.rows || x.cols <> y.cols then
    invalid_arg "Dense.axpy: dim mismatch" ;
  Flops.add (2 * numel x) ;
  let xd = x.data and yd = y.data in
  let body lo hi =
    for i = lo to hi - 1 do
      Array.unsafe_set yd i
        (Array.unsafe_get yd i +. (alpha *. Array.unsafe_get xd i))
    done
  in
  Exec.parallel_for ~min_chunk:(elt_min_chunk ()) (Exec.resolve exec) ~lo:0
    ~hi:(Array.length xd) body

(* out ← alpha·src; out may alias src. *)
let scale_into ?exec alpha src ~out =
  if src.rows <> out.rows || src.cols <> out.cols then
    invalid_arg "Dense.scale_into: dim mismatch" ;
  Flops.add (numel src) ;
  let sd = src.data and od = out.data in
  let body lo hi =
    for i = lo to hi - 1 do
      Array.unsafe_set od i (alpha *. Array.unsafe_get sd i)
    done
  in
  Exec.parallel_for ~min_chunk:(elt_min_chunk ()) (Exec.resolve exec) ~lo:0
    ~hi:(Array.length sd) body

(* out ← f a b element-wise; out may alias a or b. *)
let map2_into ?exec f a b ~out =
  if a.rows <> b.rows || a.cols <> b.cols || a.rows <> out.rows
     || a.cols <> out.cols
  then invalid_arg "Dense.map2_into: dim mismatch" ;
  Flops.add (numel a) ;
  let ad = a.data and bd = b.data and od = out.data in
  let body lo hi =
    for i = lo to hi - 1 do
      Array.unsafe_set od i (f (Array.unsafe_get ad i) (Array.unsafe_get bd i))
    done
  in
  Exec.parallel_for ~min_chunk:(elt_min_chunk ()) (Exec.resolve exec) ~lo:0
    ~hi:(Array.length ad) body

(* ---- aggregations (paper §3.3.2 on regular matrices) ---- *)

let row_sums m =
  Flops.add (numel m) ;
  let out = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref 0.0 in
    for j = 0 to m.cols - 1 do
      acc := !acc +. Array.unsafe_get m.data (base + j)
    done ;
    out.(i) <- !acc
  done ;
  of_col_array out

let col_sums m =
  Flops.add (numel m) ;
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set out j
        (Array.unsafe_get out j +. Array.unsafe_get m.data (base + j))
    done
  done ;
  of_row_array out

let sum m =
  Flops.add (numel m) ;
  Array.fold_left ( +. ) 0.0 m.data

(* Per-row minimum, as a column vector (R's rowMin, used by K-Means). *)
let row_mins m =
  if m.cols = 0 then invalid_arg "Dense.row_mins: empty" ;
  let out = Array.make m.rows 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    let acc = ref (Array.unsafe_get m.data base) in
    for j = 1 to m.cols - 1 do
      let v = Array.unsafe_get m.data (base + j) in
      if v < !acc then acc := v
    done ;
    out.(i) <- !acc
  done ;
  of_col_array out

(* Index of the per-row minimum. *)
let row_argmins m =
  if m.cols = 0 then invalid_arg "Dense.row_argmins: empty" ;
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let best = ref 0 in
      for j = 1 to m.cols - 1 do
        if Array.unsafe_get m.data (base + j)
           < Array.unsafe_get m.data (base + !best)
        then best := j
      done ;
      !best)

let max_abs m = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 m.data

let frobenius m = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 m.data)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then infinity
  else begin
    let acc = ref 0.0 in
    Array.iter2 (fun x y -> acc := Float.max !acc (Float.abs (x -. y))) a.data b.data ;
    !acc
  end

let equal a b = a.rows = b.rows && a.cols = b.cols && a.data = b.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols && max_abs_diff a b <= tol

(* Diagonal matrix from a vector (column, row, or plain array semantics). *)
let diag_of_array v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let diag m =
  let n = min m.rows m.cols in
  Array.init n (fun i -> unsafe_get m i i)

(* ---- random matrices ---- *)

let random ?(rng = Rng.create ()) rows cols =
  init rows cols (fun _ _ -> Rng.float rng)

let gaussian ?(rng = Rng.create ()) rows cols =
  init rows cols (fun _ _ -> Rng.gaussian rng)

let pp ppf m =
  Fmt.pf ppf "@[<v>" ;
  for i = 0 to min (m.rows - 1) 9 do
    Fmt.pf ppf "[" ;
    for j = 0 to min (m.cols - 1) 11 do
      Fmt.pf ppf "%9.4f " (unsafe_get m i j)
    done ;
    if m.cols > 12 then Fmt.pf ppf "..." ;
    Fmt.pf ppf "]@,"
  done ;
  if m.rows > 10 then Fmt.pf ppf "... (%dx%d)@," m.rows m.cols ;
  Fmt.pf ppf "@]"

let to_string m = Fmt.str "%a" pp m
