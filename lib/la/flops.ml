(* Counter of floating-point arithmetic operations performed by the LA
   kernels. The paper's Table 3 / Table 11 report "arithmetic
   computations (multiplications and additions)" for the standard vs
   factorized operators; this counter lets tests and the [table3] bench
   check the implementation against those analytic expressions.

   Kernel bodies run on whatever domain the {!Exec} backend schedules
   them on, so a single global [float ref] would drop updates under the
   parallel backend. Instead every domain accumulates into its own
   domain-local cell ([Domain.DLS]); cells are registered in a global
   list at creation and [get]/[reset] aggregate over it. Counts are
   integer-valued floats well below 2^53, so per-domain partial sums are
   exact and domain-count-independent.

   [get]/[reset] are exact at quiescent points — i.e. whenever no
   kernel is in flight, which {!Exec} guarantees on return from every
   kernel call (the pool joins its batch). Kernels add bulk amounts
   (one [add] per kernel or per chunk row), so instrumentation cost
   stays negligible. *)

let cells = ref []
let cells_lock = Analysis.Sync.create ~name:"la.flops.cells" ()

let key =
  Domain.DLS.new_key (fun () ->
      let cell = ref 0.0 in
      Analysis.Sync.with_lock cells_lock (fun () -> cells := cell :: !cells) ;
      cell)

let enabled = ref true

let add n =
  if !enabled then begin
    let c = Domain.DLS.get key in
    c := !c +. float_of_int n
  end

let addf n =
  if !enabled then begin
    let c = Domain.DLS.get key in
    c := !c +. n
  end

let snapshot () = Analysis.Sync.with_lock cells_lock (fun () -> !cells)

let get () = List.fold_left (fun acc c -> acc +. !c) 0.0 (snapshot ())

let reset () = List.iter (fun c -> c := 0.0) (snapshot ())

(* Run [f] and return its result together with the flops it performed. *)
let count f =
  let before = get () in
  let x = f () in
  (x, get () -. before)

let with_disabled f =
  let was = !enabled in
  enabled := false ;
  Fun.protect ~finally:(fun () -> enabled := was) f
