(* Global counter of floating-point arithmetic operations performed by the
   LA kernels. The paper's Table 3 / Table 11 report "arithmetic
   computations (multiplications and additions)" for the standard vs
   factorized operators; this counter lets tests and the [table3] bench
   check the implementation against those analytic expressions.

   Kernels add bulk amounts (one [add] call per kernel invocation), so the
   instrumentation cost is negligible. *)

let counter = ref 0.0

let enabled = ref true

let reset () = counter := 0.0

let add n = if !enabled then counter := !counter +. float_of_int n

let addf n = if !enabled then counter := !counter +. n

let get () = !counter

(* Run [f] and return its result together with the flops it performed. *)
let count f =
  let before = !counter in
  let x = f () in
  (x, !counter -. before)

let with_disabled f =
  let was = !enabled in
  enabled := false ;
  Fun.protect ~finally:(fun () -> enabled := was) f
