(* Pluggable execution engine for the LA kernels.

   Every kernel in the system is written as a range-parameterized body
   (over output rows for map-shaped kernels, over input rows for
   reductions) and handed to one of the two combinators here, so the
   sequential and parallel backends execute the *same* kernel code —
   the factorized/materialized speed-up ratios keep reflecting the
   algorithms, not the substrate (the invariant blas.mli promises).

   Two backends:
   - [seq]: runs the body directly on the calling domain.
   - [par ~domains]: runs chunks of the range on a persistent
     {!Pool} of OCaml 5 domains.

   Determinism. [parallel_for] bodies own disjoint output rows and each
   element's accumulation order is internal to the body, so any
   schedule produces bitwise-identical results. [reduce] combines
   chunk results, and float addition is not associative — so the chunk
   grid is *canonical*: a pure function of the range (never of the
   domain count), and partials are always folded in ascending chunk
   order. Both backends therefore produce bitwise-identical results
   for every kernel, at any domain count.

   Nesting. A kernel called from inside a parallel region (e.g.
   [Blas.crossprod] inside a chunk of [Ore.Chunked_ops.crossprod]) must
   not re-enter the pool: a domain-local flag downgrades nested regions
   to sequential execution over the same canonical grid. Each downgrade
   is counted ([Analysis.Sync.nested_downgrades], surfaced in serve
   stats) and reported as W101 under lockdep — intentional nesting
   (Ore's chunked operators) shows up there rather than silently. *)

type par_state = { domains : int; mutable pool : Pool.t option }

type t =
  | Sequential
  | Parallel of par_state

let seq = Sequential

let par ~domains =
  if domains < 1 then invalid_arg "Exec.par: domains must be >= 1" ;
  if domains = 1 then Sequential else Parallel { domains; pool = None }

let make n = if n <= 1 then Sequential else par ~domains:n

let domains = function Sequential -> 1 | Parallel p -> p.domains

let name = function
  | Sequential -> "seq"
  | Parallel p -> Printf.sprintf "par:%d" p.domains

(* The pool is created on first use (so [par] backends are free to
   construct) and only ever from outside a parallel region, hence from a
   single domain at a time. *)
let pool_of p =
  match p.pool with
  | Some q -> q
  | None ->
    let q = Pool.create p.domains in
    p.pool <- Some q ;
    q

let shutdown = function
  | Sequential -> ()
  | Parallel p -> (
    match p.pool with
    | None -> ()
    | Some q ->
      Pool.shutdown q ;
      p.pool <- None)

(* ---- default backend: MORPHEUS_THREADS, overridable by the CLI ---- *)

let env_threads () =
  match Sys.getenv_opt "MORPHEUS_THREADS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 1)

let default_backend = ref None

let default () =
  match !default_backend with
  | Some e -> e
  | None ->
    let e = make (env_threads ()) in
    default_backend := Some e ;
    e

let set_default e = default_backend := Some e

let resolve = function Some e -> e | None -> default ()

(* ---- nested-region guard ---- *)

let inside_key = Domain.DLS.new_key (fun () -> ref false)

let inside () = !(Domain.DLS.get inside_key)

let guarded f lo hi =
  let flag = Domain.DLS.get inside_key in
  flag := true ;
  Fun.protect ~finally:(fun () -> flag := false) (fun () -> f lo hi)

(* ---- chunk grids ---- *)

(* Bounds of chunk [i] of [chunks] over [lo, hi): balanced to within one
   element. *)
let chunk_bounds ~lo ~hi ~chunks i =
  let len = hi - lo in
  (lo + (len * i / chunks), lo + (len * (i + 1) / chunks))

(* The canonical reduction grid: a pure function of the range length and
   the grain, never of the backend — this is what makes reduce results
   bitwise-identical across backends and domain counts. *)
let reduce_chunks ~grain len =
  if len <= 0 then 0 else max 1 (min 64 (len / max 1 grain))

let default_grain = 2048

(* ---- combinators ---- *)

let parallel_for ?(min_chunk = 1) e ~lo ~hi f =
  let len = hi - lo in
  if len > 0 then
    match e with
    | Sequential -> f lo hi
    | Parallel p ->
      if inside () then begin
        Analysis.Sync.note_nested_downgrade ~region:"Exec.parallel_for" ;
        f lo hi
      end
      else begin
        let chunks = min (4 * p.domains) (max 1 (len / max 1 min_chunk)) in
        if chunks <= 1 then f lo hi
        else
          Pool.run (pool_of p) ~njobs:chunks (fun i ->
              let clo, chi = chunk_bounds ~lo ~hi ~chunks i in
              guarded f clo chi)
      end

let reduce ?(grain = default_grain) e ~lo ~hi ~body ~combine =
  let len = hi - lo in
  if len <= 0 then invalid_arg "Exec.reduce: empty range" ;
  let chunks = reduce_chunks ~grain len in
  if chunks = 1 then body lo hi
  else begin
    let fold_parts parts =
      let acc = ref parts.(0) in
      for i = 1 to chunks - 1 do
        acc := combine !acc parts.(i)
      done ;
      !acc
    in
    let sequential () =
      (* same grid, same fold order as the parallel path *)
      let first =
        let clo, chi = chunk_bounds ~lo ~hi ~chunks 0 in
        body clo chi
      in
      let acc = ref first in
      for i = 1 to chunks - 1 do
        let clo, chi = chunk_bounds ~lo ~hi ~chunks i in
        acc := combine !acc (body clo chi)
      done ;
      !acc
    in
    match e with
    | Sequential -> sequential ()
    | Parallel p ->
      if inside () then begin
        Analysis.Sync.note_nested_downgrade ~region:"Exec.reduce" ;
        sequential ()
      end
      else begin
        let parts = Array.make chunks None in
        Pool.run (pool_of p) ~njobs:chunks (fun i ->
            let clo, chi = chunk_bounds ~lo ~hi ~chunks i in
            parts.(i) <- Some (guarded body clo chi)) ;
        fold_parts (Array.map Option.get parts)
      end
  end
