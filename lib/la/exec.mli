(** Pluggable execution engine for the LA kernels.

    Kernels are written once as range-parameterized bodies and executed
    through the combinators here, so the sequential ({!seq}) and
    domain-pool ({!par}) backends run the {e same} kernel code — the
    factorized/materialized speed-up ratios keep reflecting the
    algorithms, not the substrate.

    Both backends are bitwise-deterministic: {!parallel_for} bodies own
    disjoint output rows, and {!reduce} always folds its partials over
    a canonical chunk grid (a pure function of the range, never of the
    domain count) in ascending chunk order. See docs/PARALLELISM.md. *)

type t

val seq : t
(** Run bodies directly on the calling domain. *)

val par : domains:int -> t
(** A backend over a persistent pool of [domains] domains (the caller
    participates, so [domains - 1] are spawned — lazily, on first use).
    [par ~domains:1] is {!seq}. Raises [Invalid_argument] when
    [domains < 1]. *)

val make : int -> t
(** [make n] is {!seq} for [n <= 1], [par ~domains:n] otherwise. *)

val domains : t -> int

val name : t -> string
(** ["seq"] or ["par:N"], for logs and bench output. *)

val shutdown : t -> unit
(** Join the backend's pool domains, if any were started. The backend
    remains usable: the pool is recreated on next use. *)

(** {1 Default backend}

    Kernels whose [?exec] argument is omitted use the process-wide
    default: [MORPHEUS_THREADS] from the environment (read once, on
    first use), overridable by {!set_default} (the CLI's [--threads]). *)

val default : unit -> t
val set_default : t -> unit

val resolve : t option -> t
(** [resolve exec] is the kernel-entry idiom:
    [Option.value exec ~default:(default ())]. *)

(** {1 Combinators} *)

val parallel_for : ?min_chunk:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** [parallel_for e ~lo ~hi body] executes [body] over sub-ranges
    partitioning [lo, hi). The body must only write state owned by its
    rows; each element's accumulation order is internal to one body
    call, so results are bitwise-identical on every backend.
    [min_chunk] bounds the smallest profitable sub-range (kernels
    derive it from per-row flop counts). Nested calls — a kernel
    invoked from inside a parallel region — run sequentially. *)

val reduce :
  ?grain:int ->
  t ->
  lo:int ->
  hi:int ->
  body:(int -> int -> 'a) ->
  combine:('a -> 'a -> 'a) ->
  'a
(** [reduce e ~lo ~hi ~body ~combine] folds [combine] over the chunk
    partials [body clo chi] of a canonical grid of [lo, hi), in
    ascending chunk order — identical float operations on every
    backend and domain count. [grain] is the target rows per chunk
    (default 2048; chunked out-of-core operators pass [~grain:1] to get
    one task per chunk index). A single-chunk grid calls [body lo hi]
    alone, making the sequential backend's hot path identical to a
    direct kernel call. Raises [Invalid_argument] on an empty range
    (kernels special-case zero-row inputs). *)
