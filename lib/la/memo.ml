(* Lazy, thread-safe invariant cells: the storage behind the memoization
   layer that caches loop-invariant factorized quantities (crossprod(T),
   rowSums(T²), the KᵀK fan-in diagonal, …) on immutable matrix values.

   A cell is write-once-per-value: [force] computes at most one result
   per cell under normal operation and every later access returns the
   cached value without recomputation — in particular without re-running
   the kernel, so the {!Flops} counters record zero work for cache hits
   (the observable that the memo tests and the BENCH_memo bench rely
   on).

   Concurrency. Kernels can be reached from pool domains (e.g. the
   Ore chunked operators call rewrites inside parallel regions), so a
   plain unsynchronized [ref] would be a data race under the OCaml 5
   memory model. All cell reads and publications go through one global
   lock; the *computation* itself runs outside the lock, so two domains
   racing on an empty cell may both compute, but only the first
   publication wins and every kernel here is deterministic, so the loser
   computed the bitwise-same value. Critical sections are O(1) pointer
   operations — contention is negligible next to any kernel.

   A global [enabled] switch mirrors {!Flops.with_disabled}: the paper
   benches time repeated applications of one operator on one matrix, and
   with memoization on they would measure cache hits instead of kernels.
   [set_enabled false] turns every [force] into a plain call. *)

type 'a cell = { mutable v : 'a option }

let lock = Analysis.Sync.create ~name:"la.memo" ()

let cell () = { v = None }

let enabled = ref true

let set_enabled b = enabled := b

let is_enabled () = !enabled

let with_disabled f =
  let was = !enabled in
  enabled := false ;
  Fun.protect ~finally:(fun () -> enabled := was) f

let peek c = Analysis.Sync.with_lock lock (fun () -> c.v)

let is_cached c = Option.is_some (peek c)

let clear c = Analysis.Sync.with_lock lock (fun () -> c.v <- None)

let force c f =
  if not !enabled then f ()
  else
    match Analysis.Sync.with_lock lock (fun () -> c.v) with
    | Some v -> v
    | None ->
      let v = f () in
      Analysis.Sync.with_lock lock (fun () ->
          match c.v with
          | Some v' -> v'
          | None ->
            c.v <- Some v ;
            v)
