(** Factorizations and (pseudo-)inversion — the LAPACK-shaped part of
    the substrate. [ginv] is the Moore-Penrose pseudo-inverse through an
    economic SVD, matching the paper's use of R/MASS ginv (Table 11). *)

exception Singular
(** Raised by the LU path when a pivot vanishes. *)

exception Not_positive_definite
(** Raised by {!cholesky}. *)

type lu
(** An LU factorization with partial pivoting. *)

val lu_decompose : Dense.t -> lu
(** O(n³/3) factorization of a square matrix; raises {!Singular}. *)

val lu_solve : lu -> Dense.t -> Dense.t
(** Solve for a matrix of right-hand-side columns. *)

val solve : Dense.t -> Dense.t -> Dense.t
(** R's [solve(A, B)]: exact solve of a nonsingular square system. *)

val inverse : Dense.t -> Dense.t

val determinant : Dense.t -> float
(** 0 for singular matrices. *)

val cholesky : Dense.t -> Dense.t
(** Lower-triangular [L] with [A = L·Lᵀ] for symmetric positive-definite
    [A]; raises {!Not_positive_definite} otherwise. *)

val qr : Dense.t -> Dense.t * Dense.t
(** Thin Householder QR of a matrix with [rows >= cols]: [(q, r)] with
    [a = q·r], [q] having orthonormal columns and [r] upper-triangular. *)

val lstsq_qr : Dense.t -> Dense.t -> Dense.t
(** Least squares min ‖a·x − b‖ via QR + back substitution; raises
    {!Singular} when [a] is column-rank-deficient. *)

val sym_eig : ?max_sweeps:int -> ?tol:float -> Dense.t -> float array * Dense.t
(** Cyclic-Jacobi eigendecomposition of a symmetric matrix:
    [(vals, v)] with [A = V·diag(vals)·Vᵀ], [V] orthogonal. Eigenvalues
    are unsorted. *)

val ginv_sym : ?tol:float -> Dense.t -> Dense.t
(** Moore-Penrose pseudo-inverse of a symmetric matrix via {!sym_eig}
    (eigenvalues below [tol] are treated as zero). This is what the
    factorized ginv rewrite applies to the d×d cross-product. *)

val svd_tall : ?max_sweeps:int -> ?tol:float -> Dense.t -> Dense.t * float array * Dense.t
(** One-sided-Jacobi thin SVD of a matrix with [rows >= cols]:
    [(u, s, v)] with [a = u·diag(s)·vᵀ]. *)

val svd : Dense.t -> Dense.t * float array * Dense.t
(** Economic SVD of any matrix (transposes internally when wide). *)

val ginv : ?tol:float -> Dense.t -> Dense.t
(** Moore-Penrose pseudo-inverse via {!svd}, like R MASS::ginv. *)

val lstsq : Dense.t -> Dense.t -> Dense.t
(** Least-squares solve [x = ginv(a)·b]. *)
