(** Numeric guards: cheap NaN/Inf scans at layer boundaries.

    A non-finite value entering a factorized product poisons every
    downstream aggregate silently; these scans turn that into a
    structured {!Numeric_error} naming the stage that let it through
    (a loaded file, a gradient step, a materialization). Scans are a
    single pass over data that is already cache-hot at the boundary,
    so the cost is one read per element. *)

type issue = {
  stage : string;  (** where the value was caught, e.g. ["logreg.step"] *)
  index : int;  (** flat index of the first offending element *)
  value : float;  (** the offending value (nan, infinity, …) *)
}

exception Numeric_error of issue

val message : issue -> string
(** Human-readable one-liner, used by error responses and the CLI. *)

val scan : float array -> int option
(** Index of the first non-finite element, if any. *)

val array_ok : float array -> bool
(** [scan a = None]. *)

val check_array : stage:string -> float array -> unit
(** Raise {!Numeric_error} on the first non-finite element. *)

val check_dense : stage:string -> Dense.t -> Dense.t
(** {!check_array} on the backing data; returns the input unchanged so
    it chains inside expressions. *)
