(** Lazy, thread-safe invariant cells — the storage behind the
    memoization layer that caches loop-invariant factorized quantities
    (crossprod(T), rowSums(T²), the KᵀK fan-in diagonal, …) on
    immutable matrix values.

    Cells are attached to immutable owners (normalized matrices,
    indicator matrices, the regular-matrix wrapper), so there is no
    invalidation protocol: a cached value stays valid for the owner's
    lifetime. Cache hits re-run no kernel, so the {!Flops} counters
    record zero work for them — the observable the memo tests assert.

    All reads and publications are serialized through one internal
    mutex (rewrites can run on pool domains); the computation itself
    runs outside the lock. Two domains racing on an empty cell may both
    compute, but publications are first-wins and the kernels are
    deterministic, so every reader sees the same value. *)

type 'a cell

val cell : unit -> 'a cell
(** A fresh, empty cell. *)

val force : 'a cell -> (unit -> 'a) -> 'a
(** [force c f] returns the cached value, or computes [f ()], caches
    and returns it. When memoization is globally disabled it is just
    [f ()] — nothing is read or written. *)

val peek : 'a cell -> 'a option
(** The cached value, if any, without computing. *)

val is_cached : 'a cell -> bool

val clear : 'a cell -> unit
(** Drop the cached value (benches use this to re-measure cold). *)

(** {1 Global switch}

    The paper-reproduction benches time repeated applications of one
    operator on one matrix; with memoization on they would measure
    cache hits instead of kernels, so they disable the layer. Library
    default is enabled. *)

val set_enabled : bool -> unit

val is_enabled : unit -> bool

val with_disabled : (unit -> 'a) -> 'a
(** Run with memoization off ([force] neither reads nor writes),
    restoring the previous state afterwards. *)
