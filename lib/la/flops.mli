(** Counter of floating-point arithmetic operations performed by the LA
    kernels. The paper's Tables 3/11 report "arithmetic computations"
    per operator; this counter lets tests and the [table3] bench check
    the implementation against those analytic expressions.

    Accumulation is per-domain ([Domain.DLS]) so counts stay exact when
    kernels run on the parallel {!Exec} backend; {!get} and {!reset}
    aggregate over every domain's cell and are exact at quiescent
    points (no kernel in flight — guaranteed on return from any kernel
    call). Counts are integer-valued floats < 2^53, so totals are
    independent of the domain count and schedule. *)

val reset : unit -> unit

val add : int -> unit
(** Add an operation count (no-op while disabled). *)

val addf : float -> unit
(** Like {!add} for counts that overflow int arithmetic conveniently. *)

val get : unit -> float

val count : (unit -> 'a) -> 'a * float
(** [count f] runs [f] and returns its result with the flops it
    performed. *)

val with_disabled : (unit -> 'a) -> 'a
(** Run with counting off (e.g. inside timing loops). *)

val enabled : bool ref
(** Exposed for the benches; prefer {!with_disabled}. *)
