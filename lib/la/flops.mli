(** Global counter of floating-point arithmetic operations performed by
    the LA kernels. The paper's Tables 3/11 report "arithmetic
    computations" per operator; this counter lets tests and the
    [table3] bench check the implementation against those analytic
    expressions. Kernels add bulk amounts, so overhead is negligible. *)

val reset : unit -> unit

val add : int -> unit
(** Add an operation count (no-op while disabled). *)

val addf : float -> unit
(** Like {!add} for counts that overflow int arithmetic conveniently. *)

val get : unit -> float

val count : (unit -> 'a) -> 'a * float
(** [count f] runs [f] and returns its result with the flops it
    performed. *)

val with_disabled : (unit -> 'a) -> 'a
(** Run with counting off (e.g. inside timing loops). *)

val enabled : bool ref
(** Exposed for the benches; prefer {!with_disabled}. *)

val counter : float ref
(** The raw accumulator; prefer {!get}/{!reset}. *)
