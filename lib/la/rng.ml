(* Deterministic splittable PRNG (splitmix64) so that every workload
   generator, test, and bench is reproducible without relying on the
   global [Random] state. *)

type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () = { state = seed }

let of_int seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L ;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform float in [0, 1). 53 random bits. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive" ;
  let m = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land max_int in
  m mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Uniform float in [lo, hi). *)
let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

(* Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max (float t) 1e-300 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let split t = { state = next_int64 t }

(* Fisher-Yates shuffle of an int array, in place. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j) ;
    a.(j) <- tmp
  done
