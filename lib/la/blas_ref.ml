(* Reference dense kernels: the naive i-k-j triple loops the system
   shipped with before the cache-blocked rewrite of {!Blas}. They are
   kept verbatim as the semantic ground truth — {!Blas}'s tiled
   kernels must be bitwise-identical to these at every shape, beta,
   backend, domain count, and tile profile (test/test_kernels.ml, the
   @kernelcheck alias) — and as the "naive" arm of the kernel bench
   (BENCH_kernels.json).

   Everything here mirrors the tiled module exactly: same Exec range
   contracts (map kernels partition output rows, reductions fold the
   canonical grid), same flop formulas, same zero-skips. Only the loop
   order and memory traffic differ. Do not "improve" these kernels:
   their value is being boring. *)

let dim_error name a b =
  invalid_arg
    (Printf.sprintf "Blas_ref.%s: dim mismatch %dx%d * %dx%d" name
       (Dense.rows a) (Dense.cols a) (Dense.rows b) (Dense.cols b))

(* The historical fixed scheduling threshold (the tiled module derives
   its own from the tuned profile; chunking never affects results). *)
let min_rows per_row = max 1 (65_536 / max 1 per_row)

let add_into acc part =
  let ad = Dense.data acc and pd = Dense.data part in
  for i = 0 to Array.length ad - 1 do
    Array.unsafe_set ad i (Array.unsafe_get ad i +. Array.unsafe_get pd i)
  done ;
  acc

let mirror_lower c d =
  let cd = Dense.data c in
  for i = 0 to d - 1 do
    for j = 0 to i - 1 do
      Array.unsafe_set cd ((i * d) + j) (Array.unsafe_get cd ((j * d) + i))
    done
  done

let apply_beta ?exec beta c =
  if beta = 0.0 then Dense.fill c 0.0
  else if beta <> 1.0 then Dense.scale_into ?exec beta c ~out:c

(* C ← A·B + beta·C, naive i-k-j. *)
let gemm_into ?exec ?(beta = 0.0) a b ~c =
  let m = Dense.rows a and ka = Dense.cols a in
  let kb = Dense.rows b and n = Dense.cols b in
  if ka <> kb then dim_error "gemm_into" a b ;
  if Dense.rows c <> m || Dense.cols c <> n then
    invalid_arg "Blas_ref.gemm_into: output dim mismatch" ;
  apply_beta ?exec beta c ;
  Flops.addf (2.0 *. float_of_int m *. float_of_int ka *. float_of_int n) ;
  let ad = Dense.data a and bd = Dense.data b and cd = Dense.data c in
  let body lo hi =
    for i = lo to hi - 1 do
      let abase = i * ka and cbase = i * n in
      for k = 0 to ka - 1 do
        let aik = Array.unsafe_get ad (abase + k) in
        if aik <> 0.0 then begin
          let bbase = k * n in
          for j = 0 to n - 1 do
            Array.unsafe_set cd (cbase + j)
              (Array.unsafe_get cd (cbase + j)
              +. (aik *. Array.unsafe_get bd (bbase + j)))
          done
        end
      done
    done
  in
  Exec.parallel_for
    ~min_chunk:(min_rows (2 * ka * n))
    (Exec.resolve exec) ~lo:0 ~hi:m body

let gemm ?exec a b =
  if Dense.cols a <> Dense.rows b then dim_error "gemm" a b ;
  let c = Dense.create (Dense.rows a) (Dense.cols b) in
  gemm_into ?exec ~beta:0.0 a b ~c ;
  c

(* C = Aᵀ · B as a reduction over A's rows. *)
let tgemm ?exec a b =
  let ka = Dense.rows a and m = Dense.cols a in
  let kb = Dense.rows b and n = Dense.cols b in
  if ka <> kb then dim_error "tgemm" a b ;
  Flops.addf (2.0 *. float_of_int m *. float_of_int ka *. float_of_int n) ;
  if ka = 0 then Dense.create m n
  else begin
    let ad = Dense.data a and bd = Dense.data b in
    let body lo hi =
      let c = Dense.create m n in
      let cd = Dense.data c in
      for k = lo to hi - 1 do
        let abase = k * m and bbase = k * n in
        for i = 0 to m - 1 do
          let aki = Array.unsafe_get ad (abase + i) in
          if aki <> 0.0 then begin
            let cbase = i * n in
            for j = 0 to n - 1 do
              Array.unsafe_set cd (cbase + j)
                (Array.unsafe_get cd (cbase + j)
                +. (aki *. Array.unsafe_get bd (bbase + j)))
            done
          end
        done
      done ;
      c
    in
    Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:ka ~body ~combine:add_into
  end

(* C = A · Bᵀ. *)
let gemm_nt ?exec a b =
  let m = Dense.rows a and ka = Dense.cols a in
  let n = Dense.rows b and kb = Dense.cols b in
  if ka <> kb then dim_error "gemm_nt" a b ;
  Flops.addf (2.0 *. float_of_int m *. float_of_int ka *. float_of_int n) ;
  let c = Dense.create m n in
  let ad = Dense.data a and bd = Dense.data b and cd = Dense.data c in
  let body lo hi =
    for i = lo to hi - 1 do
      let abase = i * ka and cbase = i * n in
      for j = 0 to n - 1 do
        let bbase = j * kb in
        let acc = ref 0.0 in
        for k = 0 to ka - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get ad (abase + k)
               *. Array.unsafe_get bd (bbase + k))
        done ;
        Array.unsafe_set cd (cbase + j) !acc
      done
    done
  in
  Exec.parallel_for
    ~min_chunk:(min_rows (2 * ka * n))
    (Exec.resolve exec) ~lo:0 ~hi:m body ;
  c

(* crossprod(A) = Aᵀ A, upper triangle then mirror. *)
let crossprod ?exec a =
  let n = Dense.rows a and d = Dense.cols a in
  Flops.addf (float_of_int n *. float_of_int d *. float_of_int (d + 1)) ;
  if n = 0 then Dense.create d d
  else begin
    let ad = Dense.data a in
    let body lo hi =
      let c = Dense.create d d in
      let cd = Dense.data c in
      for r = lo to hi - 1 do
        let base = r * d in
        for i = 0 to d - 1 do
          let ari = Array.unsafe_get ad (base + i) in
          if ari <> 0.0 then begin
            let cbase = i * d in
            for j = i to d - 1 do
              Array.unsafe_set cd (cbase + j)
                (Array.unsafe_get cd (cbase + j)
                +. (ari *. Array.unsafe_get ad (base + j)))
            done
          end
        done
      done ;
      c
    in
    let c = Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:n ~body ~combine:add_into in
    mirror_lower c d ;
    c
  end

(* Aᵀ diag(w) A. *)
let weighted_crossprod ?exec a w =
  let n = Dense.rows a and d = Dense.cols a in
  if Array.length w <> n then
    invalid_arg "Blas_ref.weighted_crossprod: weight length mismatch" ;
  Flops.addf (float_of_int n *. float_of_int d *. float_of_int (d + 2)) ;
  if n = 0 then Dense.create d d
  else begin
    let ad = Dense.data a in
    let body lo hi =
      let c = Dense.create d d in
      let cd = Dense.data c in
      for r = lo to hi - 1 do
        let base = r * d in
        let wr = Array.unsafe_get w r in
        if wr <> 0.0 then
          for i = 0 to d - 1 do
            let ari = wr *. Array.unsafe_get ad (base + i) in
            if ari <> 0.0 then begin
              let cbase = i * d in
              for j = i to d - 1 do
                Array.unsafe_set cd (cbase + j)
                  (Array.unsafe_get cd (cbase + j)
                  +. (ari *. Array.unsafe_get ad (base + j)))
              done
            end
          done
      done ;
      c
    in
    let c = Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:n ~body ~combine:add_into in
    mirror_lower c d ;
    c
  end

(* tcrossprod(A) = A Aᵀ. *)
let tcrossprod ?exec a =
  let n = Dense.rows a and d = Dense.cols a in
  Flops.addf (float_of_int n *. float_of_int (n + 1) *. float_of_int d) ;
  let c = Dense.create n n in
  let ad = Dense.data a and cd = Dense.data c in
  let body lo hi =
    for i = lo to hi - 1 do
      let ibase = i * d in
      for j = i to n - 1 do
        let jbase = j * d in
        let acc = ref 0.0 in
        for k = 0 to d - 1 do
          acc :=
            !acc
            +. (Array.unsafe_get ad (ibase + k)
               *. Array.unsafe_get ad (jbase + k))
        done ;
        Array.unsafe_set cd ((i * n) + j) !acc ;
        Array.unsafe_set cd ((j * n) + i) !acc
      done
    done
  in
  Exec.parallel_for ~min_chunk:(min_rows (n * d)) (Exec.resolve exec) ~lo:0
    ~hi:n body ;
  c

(* y ← A·x + beta·y. *)
let gemv_into ?exec ?(beta = 0.0) a x ~y =
  let m = Dense.rows a and k = Dense.cols a in
  if Array.length x <> k then invalid_arg "Blas_ref.gemv_into: dim mismatch" ;
  if Array.length y <> m then
    invalid_arg "Blas_ref.gemv_into: output dim mismatch" ;
  Flops.add (2 * m * k) ;
  let ad = Dense.data a in
  let body lo hi =
    for i = lo to hi - 1 do
      let base = i * k in
      let acc = ref 0.0 in
      for j = 0 to k - 1 do
        acc := !acc +. (Array.unsafe_get ad (base + j) *. Array.unsafe_get x j)
      done ;
      y.(i) <-
        (if beta = 0.0 then !acc
         else if beta = 1.0 then y.(i) +. !acc
         else (beta *. y.(i)) +. !acc)
    done
  in
  Exec.parallel_for ~min_chunk:(min_rows (2 * k)) (Exec.resolve exec) ~lo:0
    ~hi:m body

let gemv ?exec a x =
  let y = Array.make (Dense.rows a) 0.0 in
  gemv_into ?exec ~beta:0.0 a x ~y ;
  y
