(** Deterministic splittable PRNG (splitmix64). Every generator, test,
    and bench passes an explicit state so runs are reproducible. *)

type t

val create : ?seed:int64 -> unit -> t
val of_int : int -> t
val copy : t -> t

val next_int64 : t -> int64
(** The raw 64-bit stream. *)

val float : t -> float
(** Uniform in [0, 1), 53 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float

val gaussian : t -> float
(** Standard normal (Box-Muller). *)

val split : t -> t
(** An independent child stream. *)

val shuffle : t -> int array -> unit
(** In-place Fisher-Yates. *)
