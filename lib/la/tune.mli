(** Tile-size profile for the blocked dense kernels ({!Blas}) and the
    autotuner driver behind [morpheus tune].

    A {!profile} fixes the macro blocking (mc × kc packed A-panel,
    kc × nc packed B-panel), the register micro-kernel shape
    (mr × nr), the scheduling grain behind [Blas.min_rows], and two
    measured constants ([flops_per_sec], [dispatch_overhead]) that the
    [Cost] model's calibration hooks consume.

    Tile sizes are {e performance-only}: the kernels keep every output
    cell's accumulation sequence fixed, so every profile produces
    bitwise-identical results (docs/PERFORMANCE.md). Resolution is
    decided once per process by [MORPHEUS_TUNE]: unset loads the
    stored profile if present; ["off"] pins the built-in defaults;
    ["auto"] sweeps on first kernel use when no profile is stored and
    persists the winner; ["k=v,..."] pins explicit values. The stored
    file is versioned, at [MORPHEUS_TUNE_FILE] or
    [$XDG_CACHE_HOME/morpheus/tune.v1]. *)

type profile = {
  mc : int;  (** rows of the packed A-panel *)
  kc : int;  (** shared depth of both packed panels *)
  nc : int;  (** columns of the packed B-panel *)
  mr : int;  (** micro-kernel rows (register accumulators) *)
  nr : int;  (** micro-kernel columns *)
  grain : int;  (** flops below which a chunk is not worth scheduling *)
  flops_per_sec : float;  (** measured gemm throughput; [0.] = unmeasured *)
  dispatch_overhead : float;  (** seconds per pool batch; [0.] = unmeasured *)
}

val default : profile
(** Portable defaults: 4×4 micro-kernel, L2-sized panels, the
    historical 64k-flop grain, unmeasured constants. *)

val clamp : profile -> profile
(** Bound every field to sane ranges (a corrupt profile may cost
    speed, never unbounded packing buffers). *)

val current : unit -> profile
(** The process-wide profile, resolving [MORPHEUS_TUNE] and the stored
    file on first call; afterwards a single ref load. Never sweeps —
    auto-mode sweeping happens through {!ensure}. *)

val set : profile -> unit
(** Override the process profile (clamped). Tests use this to force
    adversarial tile shapes. *)

val reset : unit -> unit
(** Drop the resolved profile so the next {!current} re-resolves. *)

val grain : unit -> int
(** [ (current ()).grain ] — the scheduling threshold consumed by
    [Blas.min_rows] and the other kernel chunking heuristics. *)

type mode =
  | Defaults
  | File_or_default
  | Auto
  | Pinned of profile

val mode : unit -> mode
(** The resolution mode [MORPHEUS_TUNE] selects (see module doc). *)

val path : unit -> string option
(** Where the profile is stored: [MORPHEUS_TUNE_FILE], else under the
    XDG cache directory; [None] when no location can be derived. *)

val load : unit -> profile option
(** Read the stored profile; [None] when missing, unversioned, or
    malformed (a bad file is rejected whole, never half-applied). *)

val save : profile -> string option
(** Persist atomically (tmp + rename); returns the path written, or
    [None] when no path can be derived. *)

val sweep :
  ?quick:bool ->
  flops:float ->
  run:(profile -> float) ->
  unit ->
  profile * (profile * float) list
(** Time every candidate profile with [run] (seconds for one fixed
    reference workload of [flops] arithmetic operations; smaller is
    better) and return the winner — its [grain] and [flops_per_sec]
    derived from the measured throughput — plus the full table. The
    workload itself is injected by the caller ({!Blas.autotune}), so
    Tune stays below the kernels in the module order. *)

val ensure :
  ?quick:bool -> flops:float -> run:(profile -> float) -> unit -> profile
(** [current ()], except that in auto mode with no stored profile the
    first call sweeps with [run] and persists the winner. *)

val describe : profile -> string
