(* Tile-size profile for the blocked dense kernels, and the autotuner
   driver behind `morpheus tune`.

   {!Blas}'s cache-blocked kernels are parameterized by a [profile]:
   the macro tile sizes (mc × kc packed A-panel, kc × nc packed
   B-panel), the register micro-kernel shape (mr × nr accumulators),
   the scheduling grain (smallest flop count worth dispatching as its
   own pool chunk — the source of [Blas.min_rows]), and two measured
   constants (kernel throughput, pool dispatch overhead) consumed by
   the [Cost] calibration hooks.

   Tile sizes never affect results: the kernels keep every output
   cell's accumulation sequence fixed (k strictly ascending across
   panels), so any profile — tuned, pinned, or adversarial — produces
   bitwise-identical matrices. The profile is purely a performance
   knob, which is why loading a host-specific file at startup is safe
   for reproducibility of *values* (docs/PERFORMANCE.md).

   Resolution order, decided once per process by [MORPHEUS_TUNE]:
   - unset/empty  load the on-disk profile if one exists, else the
                  built-in defaults; never sweep.
   - "off"        built-in defaults only; never read or write a file.
   - "auto"       load the file; if absent, sweep on first kernel use
                  (through the runner {!Blas} injects) and persist.
   - "k=v,..."    pin fields over the defaults (e.g.
                  "mc=128,kc=256,nc=256,mr=4,nr=4"); never sweep.

   The on-disk file is versioned ([MORPHEUS_TUNE_FILE] overrides the
   location, default $XDG_CACHE_HOME/morpheus/tune.v1); an
   unrecognized version or a malformed line invalidates the whole
   file, falling back to defaults rather than guessing.

   This module deliberately knows nothing about matrices: the sweep is
   generic over a [run : profile -> float] timing callback, so Tune
   sits below {!Dense}/{!Blas} in the module order while the kernels
   above supply the thing being timed. *)

type profile = {
  mc : int;  (* rows of the packed A-panel *)
  kc : int;  (* shared depth of both panels *)
  nc : int;  (* columns of the packed B-panel *)
  mr : int;  (* micro-kernel rows (register accumulators) *)
  nr : int;  (* micro-kernel columns *)
  grain : int;  (* flops below which a chunk is not worth scheduling *)
  flops_per_sec : float;  (* measured gemm throughput; 0 = unmeasured *)
  dispatch_overhead : float;  (* seconds per pool batch; 0 = unmeasured *)
}

(* Conservative portable defaults: a 256 KB A-panel and 1 MB B-panel
   (inside any L2 of the last decade), the 4x4 unrolled micro-kernel,
   and the historical 64k-flop scheduling grain. *)
let default =
  { mc = 128;
    kc = 256;
    nc = 512;
    mr = 4;
    nr = 4;
    grain = 65_536;
    flops_per_sec = 0.0;
    dispatch_overhead = 0.0 }

(* Clamp a parsed/loaded profile to sane bounds so a corrupt file can
   cost speed but never unbounded packing buffers. *)
let clamp p =
  let dim lo hi v = max lo (min hi v) in
  { mc = dim 1 2048 p.mc;
    kc = dim 1 2048 p.kc;
    nc = dim 1 4096 p.nc;
    mr = dim 1 64 p.mr;
    nr = dim 1 64 p.nr;
    grain = dim 256 16_777_216 p.grain;
    flops_per_sec = (if Float.is_finite p.flops_per_sec then max 0.0 p.flops_per_sec else 0.0);
    dispatch_overhead =
      (if Float.is_finite p.dispatch_overhead then max 0.0 p.dispatch_overhead
       else 0.0) }

let describe p =
  Printf.sprintf
    "mc=%d kc=%d nc=%d mr=%d nr=%d grain=%d flops_per_sec=%.3g dispatch_overhead=%.3g"
    p.mc p.kc p.nc p.mr p.nr p.grain p.flops_per_sec p.dispatch_overhead

(* ---- the versioned on-disk profile ---- *)

let version_line = "morpheus-tune v1"

let path () =
  match Sys.getenv_opt "MORPHEUS_TUNE_FILE" with
  | Some p when p <> "" -> Some p
  | _ -> (
    let under base = Filename.concat base "morpheus/tune.v1" in
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Some (under d)
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Some (under (Filename.concat h ".cache"))
      | _ -> None))

let field_of p = function
  | "mc" -> Some (string_of_int p.mc)
  | "kc" -> Some (string_of_int p.kc)
  | "nc" -> Some (string_of_int p.nc)
  | "mr" -> Some (string_of_int p.mr)
  | "nr" -> Some (string_of_int p.nr)
  | "grain" -> Some (string_of_int p.grain)
  | "flops_per_sec" -> Some (Printf.sprintf "%.6g" p.flops_per_sec)
  | "dispatch_overhead" -> Some (Printf.sprintf "%.6g" p.dispatch_overhead)
  | _ -> None

let field_names =
  [ "mc"; "kc"; "nc"; "mr"; "nr"; "grain"; "flops_per_sec";
    "dispatch_overhead" ]

(* Apply one [key value] pair; [None] on an unknown key or unparsable
   value, so callers can reject the whole source. *)
let set_field p key v =
  let int f = Option.map f (int_of_string_opt v) in
  let flt f = Option.map f (float_of_string_opt v) in
  match key with
  | "mc" -> int (fun n -> { p with mc = n })
  | "kc" -> int (fun n -> { p with kc = n })
  | "nc" -> int (fun n -> { p with nc = n })
  | "mr" -> int (fun n -> { p with mr = n })
  | "nr" -> int (fun n -> { p with nr = n })
  | "grain" -> int (fun n -> { p with grain = n })
  | "flops_per_sec" -> flt (fun x -> { p with flops_per_sec = x })
  | "dispatch_overhead" -> flt (fun x -> { p with dispatch_overhead = x })
  | _ -> None

let load_file file =
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in file in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in_noerr ic) ;
    match List.rev !lines with
    | first :: rest when String.trim first = version_line ->
      let parse acc line =
        match acc with
        | None -> None
        | Some p -> (
          match String.trim line with
          | "" -> Some p
          | l -> (
            match String.index_opt l ' ' with
            | None -> None
            | Some i ->
              set_field p
                (String.sub l 0 i)
                (String.trim (String.sub l (i + 1) (String.length l - i - 1)))))
      in
      Option.map clamp (List.fold_left parse (Some default) rest)
    | _ -> None
  end

let load () = match path () with None -> None | Some f -> load_file f

let save_to file p =
  let dir = Filename.dirname file in
  let rec mkdirs d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d) ;
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  mkdirs dir ;
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (version_line ^ "\n") ;
  List.iter
    (fun k ->
      match field_of p k with
      | Some v -> output_string oc (k ^ " " ^ v ^ "\n")
      | None -> ())
    field_names ;
  close_out oc ;
  Sys.rename tmp file

let save p =
  match path () with
  | None -> None
  | Some f ->
    save_to f p ;
    Some f

(* ---- MORPHEUS_TUNE resolution ---- *)

type mode =
  | Defaults  (* "off": built-ins, no file I/O *)
  | File_or_default  (* unset: stored profile if present *)
  | Auto  (* stored profile, else sweep on first use and persist *)
  | Pinned of profile  (* explicit k=v list *)

let parse_pinned s =
  let apply acc kv =
    match acc with
    | None -> None
    | Some p -> (
      match String.index_opt kv '=' with
      | None -> None
      | Some i ->
        set_field p
          (String.trim (String.sub kv 0 i))
          (String.trim (String.sub kv (i + 1) (String.length kv - i - 1))))
  in
  List.fold_left apply (Some default)
    (List.filter
       (fun s -> String.trim s <> "")
       (String.split_on_char ',' s))

let mode () =
  match Option.map String.trim (Sys.getenv_opt "MORPHEUS_TUNE") with
  | None | Some "" -> File_or_default
  | Some ("off" | "0" | "none") -> Defaults
  | Some "auto" -> Auto
  | Some s -> (
    match parse_pinned s with
    | Some p -> Pinned (clamp p)
    | None ->
      prerr_endline
        ("morpheus: ignoring unparsable MORPHEUS_TUNE=" ^ s
        ^ " (expected off|auto|k=v,...)") ;
      File_or_default)

(* The process-wide profile: resolved once, overridable by tests and
   by a completed sweep. Reads after the first are a single ref load,
   cheap enough for every kernel call. *)
let current_ref : profile option ref = ref None

let resolve () =
  match mode () with
  | Defaults -> default
  | Pinned p -> p
  | File_or_default | Auto -> (
    match load () with Some p -> p | None -> default)

let current () =
  match !current_ref with
  | Some p -> p
  | None ->
    let p = resolve () in
    current_ref := Some p ;
    p

let set p =
  current_ref := Some (clamp p)

let reset () = current_ref := None

let grain () = (current ()).grain

(* ---- the sweep ---- *)

(* Candidate grid: panel footprints from ~64 KB to ~4 MB, both unrolled
   micro-kernel shapes. Kept deliberately small — the sweep is run
   explicitly (or once, in auto mode), not on a hot path. *)
let candidates ~quick =
  let blockings =
    if quick then [ (128, 256, 512); (256, 256, 512) ]
    else
      [ (64, 128, 256);
        (64, 256, 512);
        (128, 128, 256);
        (128, 256, 512);
        (128, 512, 512);
        (256, 256, 512);
        (256, 512, 1024);
        (512, 256, 512) ]
  in
  let micros = [ (4, 4); (6, 2) ] in
  List.concat_map
    (fun (mc, kc, nc) ->
      List.map (fun (mr, nr) -> { default with mc; kc; nc; mr; nr }) micros)
    blockings

(* Sweep the candidate grid with the caller's timer (seconds for one
   fixed reference workload under the given profile; smaller is
   better). Returns the winner — with [grain] derived from the
   measured throughput when the caller passes the workload's flop
   count — plus the full measurement table for reporting. *)
let sweep ?(quick = false) ~flops ~run () =
  let timed =
    List.map (fun p -> (p, run p)) (candidates ~quick)
  in
  let best, best_t =
    List.fold_left
      (fun (bp, bt) (p, t) -> if t < bt then (p, t) else (bp, bt))
      (default, infinity) timed
  in
  let rate = if best_t > 0.0 then flops /. best_t else 0.0 in
  (* A chunk should amortize the ~microsecond-scale dispatch cost: make
     the scheduling grain ~30 us of measured work, clamped around the
     historical 64k-flop default. *)
  let grain =
    if rate > 0.0 then
      max 8_192 (min 4_194_304 (int_of_float (rate *. 30e-6)))
    else default.grain
  in
  (clamp { best with grain; flops_per_sec = rate }, timed)

(* Run the sweep once in auto mode when no stored profile exists; the
   kernels call this lazily with their own runner on first use. *)
let ensured = ref false

let ensure ?(quick = true) ~flops ~run () =
  match !current_ref with
  | Some p -> p
  | None ->
    (match mode () with
    | Auto when (not !ensured) && load () = None ->
      ensured := true ;
      let p, _ = sweep ~quick ~flops ~run () in
      ignore (save p) ;
      current_ref := Some p
    | _ -> current_ref := Some (resolve ())) ;
    current ()
