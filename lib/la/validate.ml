(* NaN/Inf boundary scans. See the interface for the contract; the
   implementation is a branch-per-element loop over the raw array —
   [Float.is_finite] compiles to two compares, no allocation. *)

type issue = { stage : string; index : int; value : float }

exception Numeric_error of issue

let message { stage; index; value } =
  Printf.sprintf "non-finite value (%h) at index %d in %s" value index stage

let () =
  Printexc.register_printer (function
    | Numeric_error i -> Some ("La.Validate.Numeric_error: " ^ message i)
    | _ -> None)

let scan a =
  let n = Array.length a in
  let rec go i =
    if i >= n then None
    else if Float.is_finite (Array.unsafe_get a i) then go (i + 1)
    else Some i
  in
  go 0

let array_ok a = scan a = None

let check_array ~stage a =
  match scan a with
  | None -> ()
  | Some index -> raise (Numeric_error { stage; index; value = a.(index) })

let check_dense ~stage m =
  check_array ~stage (Dense.data m) ;
  m
