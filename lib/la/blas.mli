(** Dense multiplication kernels — the BLAS-shaped substrate. Both the
    materialized and factorized execution paths funnel through these
    routines, so measured speed-ups reflect the algorithms, not kernel
    differences. All kernels count flops in {!Flops}.

    Every kernel is a range-parameterized body executed through the
    pluggable {!Exec} engine; [?exec] overrides the process default
    ({!Exec.default}). Results are bitwise-identical across backends
    and domain counts: map-shaped kernels partition output rows, and
    reductions fold partials over {!Exec.reduce}'s canonical grid. *)

val gemm : ?exec:Exec.t -> Dense.t -> Dense.t -> Dense.t
(** [gemm a b] is [a·b]. Raises [Invalid_argument] on dim mismatch. *)

val tgemm : ?exec:Exec.t -> Dense.t -> Dense.t -> Dense.t
(** [tgemm a b] is [aᵀ·b] without materializing [aᵀ]. *)

val gemm_nt : ?exec:Exec.t -> Dense.t -> Dense.t -> Dense.t
(** [gemm_nt a b] is [a·bᵀ] without materializing [bᵀ]. *)

val crossprod : ?exec:Exec.t -> Dense.t -> Dense.t
(** [crossprod a] is [aᵀ·a], exploiting symmetry (half the multiplies —
    the saving the paper's Algorithm 2 relies on). *)

val weighted_crossprod : ?exec:Exec.t -> Dense.t -> float array -> Dense.t
(** [weighted_crossprod a w] is [aᵀ·diag(w)·a]; the heart of Algorithm
    2's [crossprod(diag(colSums K)^½ R)] without forming the scaled
    copy. Raises if [w] doesn't match [a]'s row count. *)

val tcrossprod : ?exec:Exec.t -> Dense.t -> Dense.t
(** [tcrossprod a] is [a·aᵀ] (the Gram matrix when rows are examples). *)

val gemv : ?exec:Exec.t -> Dense.t -> float array -> float array
(** Matrix-vector product. *)

(** {1 In-place / accumulating variants}

    Allocation-free destinations for iteration loops (see
    docs/PERFORMANCE.md). [?beta] (default [0.]) scales the existing
    destination before accumulating: [0.] overwrites, [1.] accumulates,
    anything else pre-scales (one extra counted pass). The destination
    must not alias an input. The pure kernels delegate to these with a
    fresh zero destination, so results are bitwise-identical. *)

val gemm_into : ?exec:Exec.t -> ?beta:float -> Dense.t -> Dense.t -> c:Dense.t -> unit
(** [gemm_into a b ~c] is [c ← a·b + beta·c]. *)

val gemv_into :
  ?exec:Exec.t -> ?beta:float -> Dense.t -> float array -> y:float array -> unit
(** [gemv_into a x ~y] is [y ← a·x + beta·y]. *)

val dot : float array -> float array -> float

(** {1 Autotuning}

    The kernels read their cache-blocking tile sizes from the process
    {!Tune} profile; tile sizes are performance-only (results are
    bitwise-identical to {!Blas_ref} under every profile). *)

val autotune :
  ?quick:bool ->
  ?now:(unit -> float) ->
  unit ->
  Tune.profile * (Tune.profile * float) list
(** Sweep the candidate tile profiles over a fixed sequential gemm
    workload, measure the domain-pool dispatch overhead, install the
    winner as the process profile ({!Tune.set} — the caller persists
    with {!Tune.save}), and return it with the full timing table
    (profile, seconds — smaller is better). [?now] injects a wall
    clock (default [Sys.time], CPU time — exact for the sequential
    sweep). Backs the [morpheus tune] subcommand. *)
