(* Dense matrix-multiplication kernels. Plays the role of the paper's
   BLAS (libblas3) substrate: every multiplication in the system — both
   the materialized and factorized execution paths — funnels through
   these routines, so speed-up ratios between the two paths reflect the
   algorithms, not kernel differences.

   The kernels are cache-blocked and register-tiled (BLIS-style): an
   mc × kc panel of the A-side operand and a kc × nc panel of the
   B-side operand are packed into contiguous per-domain buffers
   ({!Ws}, reused via [Domain.DLS]) and fed to an mr × nr register
   micro-kernel whose accumulators are non-escaping local float refs —
   classic ocamlopt unboxes those, whereas float arguments of a
   recursive loop are boxed at every call (measured: 2 words per float
   per iteration). Tile sizes come from the {!Tune} profile (autotuned
   or pinned via MORPHEUS_TUNE) and are performance-only.

   Bitwise determinism is load-bearing and preserved by construction:

   - Each kernel is still a range-parameterized body executed through
     {!Exec}: map-shaped kernels (gemm, gemm_nt, tcrossprod, gemv)
     partition their *output* rows with [Exec.parallel_for]; reduction
     kernels (tgemm, crossprod, weighted_crossprod) fold per-chunk
     partials over *input* rows with [Exec.reduce]'s canonical grid
     (default grain — never the tuned scheduling grain, which feeds
     only [min_chunk]).
   - Per output cell, the accumulation sequence is identical to the
     naive reference ({!Blas_ref}): the depth index ascends globally
     (the k-panel loop sits outside the row/column tile loops and
     panels are visited in order), every partial sum is a 64-bit
     double whether it lives in a register or round-trips through C
     (IEEE store/load is exact), and the reference's [<> 0.0]
     zero-skips are replicated per element — skipping versus adding
     ±0.0 differs bitwise when C holds -0.0 or the other operand is
     non-finite, so the skip is semantics, not an optimization.
   - Packing copies bits verbatim (the weighted kernel premultiplies
     during packing exactly the product the reference computes, with
     the same zero-row forcing), so the values entering each multiply
     are bit-identical to the reference's.

   Hence any tile profile, backend, or domain count produces the same
   matrices as {!Blas_ref} — enforced by test/test_kernels.ml
   (@kernelcheck). All kernels count flops with the same analytic
   formulas as the reference (packing is data movement, not
   arithmetic), so flop totals stay exact and schedule-independent. *)

let dim_error name a b =
  invalid_arg
    (Printf.sprintf "Blas.%s: dim mismatch %dx%d * %dx%d" name (Dense.rows a)
       (Dense.cols a) (Dense.rows b) (Dense.cols b))

(* Smallest row range worth scheduling as its own task, from the per-row
   operation count and the tuned scheduling grain: below this, chunking
   overhead beats the work. Chunk boundaries never affect results. *)
let min_rows ~grain per_row = max 1 (grain / max 1 per_row)

(* acc += part, element-wise — the [combine] of every dense reduction.
   Mutates and returns [acc]; Exec.reduce folds partials in canonical
   chunk order, keeping the rounding schedule-independent. *)
let add_into acc part =
  let ad = Dense.data acc and pd = Dense.data part in
  for i = 0 to Array.length ad - 1 do
    Array.unsafe_set ad i (Array.unsafe_get ad i +. Array.unsafe_get pd i)
  done ;
  acc

(* Mirror the upper triangle of a d×d matrix into the lower one. *)
let mirror_lower c d =
  let cd = Dense.data c in
  for i = 0 to d - 1 do
    for j = 0 to i - 1 do
      Array.unsafe_set cd ((i * d) + j) (Array.unsafe_get cd ((j * d) + i))
    done
  done

(* Prepare an accumulation destination for a [?beta] kernel: beta = 0
   zero-fills (the pure-kernel case), beta = 1 accumulates as-is, any
   other beta pre-scales the destination (counted as one pass). *)
let apply_beta ?exec beta c =
  if beta = 0.0 then Dense.fill c 0.0
  else if beta <> 1.0 then Dense.scale_into ?exec beta c ~out:c

(* Per-domain packing workspace, reused across kernel calls. Safe to
   share through DLS because kernel bodies are leaves: nothing inside a
   Blas body calls back into Blas, so a domain never needs two live
   workspaces at once. Buffers grow geometrically and are uninitialized
   ([create_float]) — packing writes every slot the micro-kernels read. *)
module Ws = struct
  type t = { mutable a : float array; mutable b : float array }

  let key = Domain.DLS.new_key (fun () -> { a = [||]; b = [||] })
  let get () = Domain.DLS.get key

  let grow cur n =
    if Array.length cur >= n then cur
    else Array.create_float (max n (2 * Array.length cur))

  let a ws n =
    let buf = grow ws.a n in
    ws.a <- buf ;
    buf

  let b ws n =
    let buf = grow ws.b n in
    ws.b <- buf ;
    buf
end

(* ---- panel packing ----

   A-side panels are stored as mr-row micro-panels: micro-panel [ir]
   (of [mrb <= mr] actual rows) starts at [ir * kcb] and holds its
   depth-k slice at [k * mrb + rr]. B-side panels are the mirror image
   with nr-column micro-panels. Edge micro-panels pack at their true
   width — no zero padding, which would add spurious ±0/NaN terms.

   A-side packers return [true] when the panel is zero-free: packing
   already touches every value, so the check is nearly free, and on a
   zero-free panel the reference's per-element [<> 0.0] skip can never
   fire — the micro-kernels then run a branch-free inner loop that is
   bitwise-identical by construction. *)

(* Rows [ic, ic+h) × depth [pc, pc+kcb) of a row-major src (stride lda). *)
let pack_a_rows src lda buf ~ic ~h ~pc ~kcb ~mr =
  let zfree = ref true in
  let ir = ref 0 in
  while !ir < h do
    let mrb = min mr (h - !ir) in
    let base = !ir * kcb in
    for rr = 0 to mrb - 1 do
      let sbase = ((ic + !ir + rr) * lda) + pc in
      let dbase = base + rr in
      for k = 0 to kcb - 1 do
        let v = Array.unsafe_get src (sbase + k) in
        if v = 0.0 then zfree := false ;
        Array.unsafe_set buf (dbase + (k * mrb)) v
      done
    done ;
    ir := !ir + mr
  done ;
  !zfree

(* Same panel shape from a transposed source: element (row i, depth k)
   is [src[(pc + k) * lda + i]] — a column slice of the original. *)
let pack_a_trans src lda buf ~ic ~h ~pc ~kcb ~mr =
  let zfree = ref true in
  let ir = ref 0 in
  while !ir < h do
    let mrb = min mr (h - !ir) in
    let base = !ir * kcb in
    for k = 0 to kcb - 1 do
      let sbase = ((pc + k) * lda) + ic + !ir in
      let dbase = base + (k * mrb) in
      for rr = 0 to mrb - 1 do
        let v = Array.unsafe_get src (sbase + rr) in
        if v = 0.0 then zfree := false ;
        Array.unsafe_set buf (dbase + rr) v
      done
    done ;
    ir := !ir + mr
  done ;
  !zfree

(* Transposed pack premultiplied by per-depth weights: packs
   [w_k * src[k, i]], forcing 0.0 when [w_k = 0.0] so a zero-weight row
   contributes nothing even when src holds NaN/inf — exactly the
   reference kernel's outer row-skip. The packed value equals the
   reference's [ari = wr *. a], so its [<> 0.0] skip transfers. *)
let pack_a_trans_w src lda wts buf ~ic ~h ~pc ~kcb ~mr =
  let zfree = ref true in
  let ir = ref 0 in
  while !ir < h do
    let mrb = min mr (h - !ir) in
    let base = !ir * kcb in
    for k = 0 to kcb - 1 do
      let wr = Array.unsafe_get wts (pc + k) in
      let sbase = ((pc + k) * lda) + ic + !ir in
      let dbase = base + (k * mrb) in
      if wr = 0.0 then begin
        zfree := false ;
        for rr = 0 to mrb - 1 do
          Array.unsafe_set buf (dbase + rr) 0.0
        done
      end
      else
        for rr = 0 to mrb - 1 do
          let v = wr *. Array.unsafe_get src (sbase + rr) in
          if v = 0.0 then zfree := false ;
          Array.unsafe_set buf (dbase + rr) v
        done
    done ;
    ir := !ir + mr
  done ;
  !zfree

(* Depth [pc, pc+kcb) × columns [jc, jc+w) of a row-major src. *)
let pack_b_panel src ldb buf ~jc ~w ~pc ~kcb ~nr =
  let jr = ref 0 in
  while !jr < w do
    let nrb = min nr (w - !jr) in
    let base = !jr * kcb in
    for k = 0 to kcb - 1 do
      let sbase = ((pc + k) * ldb) + jc + !jr in
      let dbase = base + (k * nrb) in
      for jj = 0 to nrb - 1 do
        Array.unsafe_set buf (dbase + jj) (Array.unsafe_get src (sbase + jj))
      done
    done ;
    jr := !jr + nr
  done

(* ---- accumulating micro-kernels (gemm-shaped) ----

   C[tile] += Apanel · Bpanel over one kc panel. Accumulators are loaded
   from C, updated for each depth index in ascending order, and stored
   back once — the same per-cell operation sequence as the reference,
   with each row's contribution guarded by its [<> 0.0] skip. When the
   packer reported the panel zero-free ([zf]), the skip can never fire,
   so an unguarded loop produces the exact same float sequence — that
   branch-free path is where the dense-data throughput comes from. *)

let micro_4x4 ab ao bb bo cd co cs kcb zf =
  let r1 = co + cs in
  let r2 = r1 + cs in
  let r3 = r2 + cs in
  let c00 = ref (Array.unsafe_get cd co)
  and c01 = ref (Array.unsafe_get cd (co + 1))
  and c02 = ref (Array.unsafe_get cd (co + 2))
  and c03 = ref (Array.unsafe_get cd (co + 3))
  and c10 = ref (Array.unsafe_get cd r1)
  and c11 = ref (Array.unsafe_get cd (r1 + 1))
  and c12 = ref (Array.unsafe_get cd (r1 + 2))
  and c13 = ref (Array.unsafe_get cd (r1 + 3))
  and c20 = ref (Array.unsafe_get cd r2)
  and c21 = ref (Array.unsafe_get cd (r2 + 1))
  and c22 = ref (Array.unsafe_get cd (r2 + 2))
  and c23 = ref (Array.unsafe_get cd (r2 + 3))
  and c30 = ref (Array.unsafe_get cd r3)
  and c31 = ref (Array.unsafe_get cd (r3 + 1))
  and c32 = ref (Array.unsafe_get cd (r3 + 2))
  and c33 = ref (Array.unsafe_get cd (r3 + 3)) in
  if zf then
    (* Branch-free path: same update sequence with the skips elided.
       Kept as a straight non-unrolled loop — a k-unroll-by-2 variant
       measured consistently slower here (the 16 live accumulators plus
       running offsets spill once the unrolled body doubles register
       demand), and the loop bodies are spelled out inline rather than
       factored into a local function because a closure would capture
       the accumulator refs and box them. *)
    for k = 0 to kcb - 1 do
      let ap = ao + (4 * k) and bp = bo + (4 * k) in
      let b0 = Array.unsafe_get bb bp
      and b1 = Array.unsafe_get bb (bp + 1)
      and b2 = Array.unsafe_get bb (bp + 2)
      and b3 = Array.unsafe_get bb (bp + 3) in
      let a0 = Array.unsafe_get ab ap in
      c00 := !c00 +. (a0 *. b0) ;
      c01 := !c01 +. (a0 *. b1) ;
      c02 := !c02 +. (a0 *. b2) ;
      c03 := !c03 +. (a0 *. b3) ;
      let a1 = Array.unsafe_get ab (ap + 1) in
      c10 := !c10 +. (a1 *. b0) ;
      c11 := !c11 +. (a1 *. b1) ;
      c12 := !c12 +. (a1 *. b2) ;
      c13 := !c13 +. (a1 *. b3) ;
      let a2 = Array.unsafe_get ab (ap + 2) in
      c20 := !c20 +. (a2 *. b0) ;
      c21 := !c21 +. (a2 *. b1) ;
      c22 := !c22 +. (a2 *. b2) ;
      c23 := !c23 +. (a2 *. b3) ;
      let a3 = Array.unsafe_get ab (ap + 3) in
      c30 := !c30 +. (a3 *. b0) ;
      c31 := !c31 +. (a3 *. b1) ;
      c32 := !c32 +. (a3 *. b2) ;
      c33 := !c33 +. (a3 *. b3)
    done
  else
    for k = 0 to kcb - 1 do
      let ap = ao + (4 * k) and bp = bo + (4 * k) in
      let b0 = Array.unsafe_get bb bp
      and b1 = Array.unsafe_get bb (bp + 1)
      and b2 = Array.unsafe_get bb (bp + 2)
      and b3 = Array.unsafe_get bb (bp + 3) in
      let a0 = Array.unsafe_get ab ap in
      if a0 <> 0.0 then begin
        c00 := !c00 +. (a0 *. b0) ;
        c01 := !c01 +. (a0 *. b1) ;
        c02 := !c02 +. (a0 *. b2) ;
        c03 := !c03 +. (a0 *. b3)
      end ;
      let a1 = Array.unsafe_get ab (ap + 1) in
      if a1 <> 0.0 then begin
        c10 := !c10 +. (a1 *. b0) ;
        c11 := !c11 +. (a1 *. b1) ;
        c12 := !c12 +. (a1 *. b2) ;
        c13 := !c13 +. (a1 *. b3)
      end ;
      let a2 = Array.unsafe_get ab (ap + 2) in
      if a2 <> 0.0 then begin
        c20 := !c20 +. (a2 *. b0) ;
        c21 := !c21 +. (a2 *. b1) ;
        c22 := !c22 +. (a2 *. b2) ;
        c23 := !c23 +. (a2 *. b3)
      end ;
      let a3 = Array.unsafe_get ab (ap + 3) in
      if a3 <> 0.0 then begin
        c30 := !c30 +. (a3 *. b0) ;
        c31 := !c31 +. (a3 *. b1) ;
        c32 := !c32 +. (a3 *. b2) ;
        c33 := !c33 +. (a3 *. b3)
      end
    done ;
  Array.unsafe_set cd co !c00 ;
  Array.unsafe_set cd (co + 1) !c01 ;
  Array.unsafe_set cd (co + 2) !c02 ;
  Array.unsafe_set cd (co + 3) !c03 ;
  Array.unsafe_set cd r1 !c10 ;
  Array.unsafe_set cd (r1 + 1) !c11 ;
  Array.unsafe_set cd (r1 + 2) !c12 ;
  Array.unsafe_set cd (r1 + 3) !c13 ;
  Array.unsafe_set cd r2 !c20 ;
  Array.unsafe_set cd (r2 + 1) !c21 ;
  Array.unsafe_set cd (r2 + 2) !c22 ;
  Array.unsafe_set cd (r2 + 3) !c23 ;
  Array.unsafe_set cd r3 !c30 ;
  Array.unsafe_set cd (r3 + 1) !c31 ;
  Array.unsafe_set cd (r3 + 2) !c32 ;
  Array.unsafe_set cd (r3 + 3) !c33

let micro_6x2 ab ao bb bo cd co cs kcb zf =
  let r1 = co + cs in
  let r2 = r1 + cs in
  let r3 = r2 + cs in
  let r4 = r3 + cs in
  let r5 = r4 + cs in
  let c00 = ref (Array.unsafe_get cd co)
  and c01 = ref (Array.unsafe_get cd (co + 1))
  and c10 = ref (Array.unsafe_get cd r1)
  and c11 = ref (Array.unsafe_get cd (r1 + 1))
  and c20 = ref (Array.unsafe_get cd r2)
  and c21 = ref (Array.unsafe_get cd (r2 + 1))
  and c30 = ref (Array.unsafe_get cd r3)
  and c31 = ref (Array.unsafe_get cd (r3 + 1))
  and c40 = ref (Array.unsafe_get cd r4)
  and c41 = ref (Array.unsafe_get cd (r4 + 1))
  and c50 = ref (Array.unsafe_get cd r5)
  and c51 = ref (Array.unsafe_get cd (r5 + 1)) in
  if zf then
    for k = 0 to kcb - 1 do
      let ap = ao + (6 * k) and bp = bo + (2 * k) in
      let b0 = Array.unsafe_get bb bp and b1 = Array.unsafe_get bb (bp + 1) in
      let a0 = Array.unsafe_get ab ap in
      c00 := !c00 +. (a0 *. b0) ;
      c01 := !c01 +. (a0 *. b1) ;
      let a1 = Array.unsafe_get ab (ap + 1) in
      c10 := !c10 +. (a1 *. b0) ;
      c11 := !c11 +. (a1 *. b1) ;
      let a2 = Array.unsafe_get ab (ap + 2) in
      c20 := !c20 +. (a2 *. b0) ;
      c21 := !c21 +. (a2 *. b1) ;
      let a3 = Array.unsafe_get ab (ap + 3) in
      c30 := !c30 +. (a3 *. b0) ;
      c31 := !c31 +. (a3 *. b1) ;
      let a4 = Array.unsafe_get ab (ap + 4) in
      c40 := !c40 +. (a4 *. b0) ;
      c41 := !c41 +. (a4 *. b1) ;
      let a5 = Array.unsafe_get ab (ap + 5) in
      c50 := !c50 +. (a5 *. b0) ;
      c51 := !c51 +. (a5 *. b1)
    done
  else
    for k = 0 to kcb - 1 do
      let ap = ao + (6 * k) and bp = bo + (2 * k) in
      let b0 = Array.unsafe_get bb bp and b1 = Array.unsafe_get bb (bp + 1) in
      let a0 = Array.unsafe_get ab ap in
      if a0 <> 0.0 then begin
        c00 := !c00 +. (a0 *. b0) ;
        c01 := !c01 +. (a0 *. b1)
      end ;
      let a1 = Array.unsafe_get ab (ap + 1) in
      if a1 <> 0.0 then begin
        c10 := !c10 +. (a1 *. b0) ;
        c11 := !c11 +. (a1 *. b1)
      end ;
      let a2 = Array.unsafe_get ab (ap + 2) in
      if a2 <> 0.0 then begin
        c20 := !c20 +. (a2 *. b0) ;
        c21 := !c21 +. (a2 *. b1)
      end ;
      let a3 = Array.unsafe_get ab (ap + 3) in
      if a3 <> 0.0 then begin
        c30 := !c30 +. (a3 *. b0) ;
        c31 := !c31 +. (a3 *. b1)
      end ;
      let a4 = Array.unsafe_get ab (ap + 4) in
      if a4 <> 0.0 then begin
        c40 := !c40 +. (a4 *. b0) ;
        c41 := !c41 +. (a4 *. b1)
      end ;
      let a5 = Array.unsafe_get ab (ap + 5) in
      if a5 <> 0.0 then begin
        c50 := !c50 +. (a5 *. b0) ;
        c51 := !c51 +. (a5 *. b1)
      end
    done ;
  Array.unsafe_set cd co !c00 ;
  Array.unsafe_set cd (co + 1) !c01 ;
  Array.unsafe_set cd r1 !c10 ;
  Array.unsafe_set cd (r1 + 1) !c11 ;
  Array.unsafe_set cd r2 !c20 ;
  Array.unsafe_set cd (r2 + 1) !c21 ;
  Array.unsafe_set cd r3 !c30 ;
  Array.unsafe_set cd (r3 + 1) !c31 ;
  Array.unsafe_set cd r4 !c40 ;
  Array.unsafe_set cd (r4 + 1) !c41 ;
  Array.unsafe_set cd r5 !c50 ;
  Array.unsafe_set cd (r5 + 1) !c51

(* Edge tiles and pinned non-unrolled shapes: accumulate straight into
   C memory, per depth index ascending — the reference's own order. *)
let micro_gen ab ao bb bo cd co cs kcb mrb nrb =
  for k = 0 to kcb - 1 do
    let ap = ao + (mrb * k) and bp = bo + (nrb * k) in
    for rr = 0 to mrb - 1 do
      let av = Array.unsafe_get ab (ap + rr) in
      if av <> 0.0 then begin
        let cr = co + (rr * cs) in
        for jj = 0 to nrb - 1 do
          Array.unsafe_set cd (cr + jj)
            (Array.unsafe_get cd (cr + jj)
            +. (av *. Array.unsafe_get bb (bp + jj)))
        done
      end
    done
  done

(* Diagonal-crossing tiles of the symmetric kernels: only cells with
   j >= i, matching the reference's upper-triangle loops. *)
let micro_gen_tri ab ao bb bo cd cs kcb mrb nrb ~i0 ~j0 =
  for k = 0 to kcb - 1 do
    let ap = ao + (mrb * k) and bp = bo + (nrb * k) in
    for rr = 0 to mrb - 1 do
      let av = Array.unsafe_get ab (ap + rr) in
      if av <> 0.0 then begin
        let i = i0 + rr in
        let cr = (i * cs) + j0 in
        for jj = max 0 (i - j0) to nrb - 1 do
          Array.unsafe_set cd (cr + jj)
            (Array.unsafe_get cd (cr + jj)
            +. (av *. Array.unsafe_get bb (bp + jj)))
        done
      end
    done
  done

(* ---- the blocked macro-kernel driver ----

   Loop nest (BLIS order): jc over output columns [clo, chi) step nc,
   pc over the depth [klo, khi) step kc *ascending* (this is what keeps
   every cell's accumulation order global-k-ascending), pack the B
   panel, ic over output rows [rlo, rhi) step mc, pack the A panel,
   then jr/ir over register tiles. [tri] restricts to the upper
   triangle for the symmetric kernels: register tiles entirely above
   the diagonal use the fast micros, tiles crossing it fall back to the
   triangular edge micro, tiles strictly below are skipped. *)
let blocked ~p ~tri cd cs ~rlo ~rhi ~klo ~khi ~clo ~chi ~pack_a ~pack_b =
  let { Tune.mc; kc; nc; mr; nr; _ } = p in
  let ws = Ws.get () in
  let kmax = min kc (max 0 (khi - klo)) in
  let abuf = Ws.a ws (min mc (max 0 (rhi - rlo)) * kmax) in
  let bbuf = Ws.b ws (min nc (max 0 (chi - clo)) * kmax) in
  let jc = ref clo in
  while !jc < chi do
    let w = min nc (chi - !jc) in
    let pc = ref klo in
    while !pc < khi do
      let kcb = min kc (khi - !pc) in
      pack_b bbuf ~jc:!jc ~w ~pc:!pc ~kcb ~nr ;
      let ic = ref rlo in
      while !ic < rhi do
        let h = min mc (rhi - !ic) in
        let zf = pack_a abuf ~ic:!ic ~h ~pc:!pc ~kcb ~mr in
        let jr = ref 0 in
        while !jr < w do
          let nrb = min nr (w - !jr) in
          let bo = !jr * kcb in
          let j0 = !jc + !jr in
          let ir = ref 0 in
          while !ir < h do
            let mrb = min mr (h - !ir) in
            let ao = !ir * kcb in
            let i0 = !ic + !ir in
            if (not tri) || j0 >= i0 + mrb - 1 then begin
              let co = (i0 * cs) + j0 in
              if mrb = 4 && nrb = 4 then
                micro_4x4 abuf ao bbuf bo cd co cs kcb zf
              else if mrb = 6 && nrb = 2 then
                micro_6x2 abuf ao bbuf bo cd co cs kcb zf
              else micro_gen abuf ao bbuf bo cd co cs kcb mrb nrb
            end
            else if j0 + nrb - 1 >= i0 then
              micro_gen_tri abuf ao bbuf bo cd cs kcb mrb nrb ~i0 ~j0 ;
            ir := !ir + mr
          done ;
          jr := !jr + nr
        done ;
        ic := !ic + mc
      done ;
      pc := !pc + kc
    done ;
    jc := !jc + nc
  done

(* ---- dot-shaped micro-kernels (gemm_nt / tcrossprod) ----

   Both operands are row-contiguous in k, so there is nothing to pack:
   an mr × nr register tile accumulates full-depth dot products from
   zero and stores each cell once — exactly the reference's per-cell
   register accumulator, which also has no zero-skip. [mco >= 0] adds
   the symmetric mirror store (tcrossprod writes (i,j) and (j,i)). *)

let dot_4x4 ad a0 lda bd b0 ldb cd co cs ~mco ~kk =
  let a1 = a0 + lda in
  let a2 = a1 + lda in
  let a3 = a2 + lda in
  let b1 = b0 + ldb in
  let b2 = b1 + ldb in
  let b3 = b2 + ldb in
  let c00 = ref 0.0
  and c01 = ref 0.0
  and c02 = ref 0.0
  and c03 = ref 0.0
  and c10 = ref 0.0
  and c11 = ref 0.0
  and c12 = ref 0.0
  and c13 = ref 0.0
  and c20 = ref 0.0
  and c21 = ref 0.0
  and c22 = ref 0.0
  and c23 = ref 0.0
  and c30 = ref 0.0
  and c31 = ref 0.0
  and c32 = ref 0.0
  and c33 = ref 0.0 in
  for k = 0 to kk - 1 do
    let x0 = Array.unsafe_get ad (a0 + k)
    and x1 = Array.unsafe_get ad (a1 + k)
    and x2 = Array.unsafe_get ad (a2 + k)
    and x3 = Array.unsafe_get ad (a3 + k)
    and y0 = Array.unsafe_get bd (b0 + k)
    and y1 = Array.unsafe_get bd (b1 + k)
    and y2 = Array.unsafe_get bd (b2 + k)
    and y3 = Array.unsafe_get bd (b3 + k) in
    c00 := !c00 +. (x0 *. y0) ;
    c01 := !c01 +. (x0 *. y1) ;
    c02 := !c02 +. (x0 *. y2) ;
    c03 := !c03 +. (x0 *. y3) ;
    c10 := !c10 +. (x1 *. y0) ;
    c11 := !c11 +. (x1 *. y1) ;
    c12 := !c12 +. (x1 *. y2) ;
    c13 := !c13 +. (x1 *. y3) ;
    c20 := !c20 +. (x2 *. y0) ;
    c21 := !c21 +. (x2 *. y1) ;
    c22 := !c22 +. (x2 *. y2) ;
    c23 := !c23 +. (x2 *. y3) ;
    c30 := !c30 +. (x3 *. y0) ;
    c31 := !c31 +. (x3 *. y1) ;
    c32 := !c32 +. (x3 *. y2) ;
    c33 := !c33 +. (x3 *. y3)
  done ;
  let r1 = co + cs in
  let r2 = r1 + cs in
  let r3 = r2 + cs in
  Array.unsafe_set cd co !c00 ;
  Array.unsafe_set cd (co + 1) !c01 ;
  Array.unsafe_set cd (co + 2) !c02 ;
  Array.unsafe_set cd (co + 3) !c03 ;
  Array.unsafe_set cd r1 !c10 ;
  Array.unsafe_set cd (r1 + 1) !c11 ;
  Array.unsafe_set cd (r1 + 2) !c12 ;
  Array.unsafe_set cd (r1 + 3) !c13 ;
  Array.unsafe_set cd r2 !c20 ;
  Array.unsafe_set cd (r2 + 1) !c21 ;
  Array.unsafe_set cd (r2 + 2) !c22 ;
  Array.unsafe_set cd (r2 + 3) !c23 ;
  Array.unsafe_set cd r3 !c30 ;
  Array.unsafe_set cd (r3 + 1) !c31 ;
  Array.unsafe_set cd (r3 + 2) !c32 ;
  Array.unsafe_set cd (r3 + 3) !c33 ;
  if mco >= 0 then begin
    let m1 = mco + cs in
    let m2 = m1 + cs in
    let m3 = m2 + cs in
    Array.unsafe_set cd mco !c00 ;
    Array.unsafe_set cd (mco + 1) !c10 ;
    Array.unsafe_set cd (mco + 2) !c20 ;
    Array.unsafe_set cd (mco + 3) !c30 ;
    Array.unsafe_set cd m1 !c01 ;
    Array.unsafe_set cd (m1 + 1) !c11 ;
    Array.unsafe_set cd (m1 + 2) !c21 ;
    Array.unsafe_set cd (m1 + 3) !c31 ;
    Array.unsafe_set cd m2 !c02 ;
    Array.unsafe_set cd (m2 + 1) !c12 ;
    Array.unsafe_set cd (m2 + 2) !c22 ;
    Array.unsafe_set cd (m2 + 3) !c32 ;
    Array.unsafe_set cd m3 !c03 ;
    Array.unsafe_set cd (m3 + 1) !c13 ;
    Array.unsafe_set cd (m3 + 2) !c23 ;
    Array.unsafe_set cd (m3 + 3) !c33
  end

let dot_6x2 ad a0 lda bd b0 ldb cd co cs ~mco ~kk =
  let a1 = a0 + lda in
  let a2 = a1 + lda in
  let a3 = a2 + lda in
  let a4 = a3 + lda in
  let a5 = a4 + lda in
  let b1 = b0 + ldb in
  let c00 = ref 0.0
  and c01 = ref 0.0
  and c10 = ref 0.0
  and c11 = ref 0.0
  and c20 = ref 0.0
  and c21 = ref 0.0
  and c30 = ref 0.0
  and c31 = ref 0.0
  and c40 = ref 0.0
  and c41 = ref 0.0
  and c50 = ref 0.0
  and c51 = ref 0.0 in
  for k = 0 to kk - 1 do
    let x0 = Array.unsafe_get ad (a0 + k)
    and x1 = Array.unsafe_get ad (a1 + k)
    and x2 = Array.unsafe_get ad (a2 + k)
    and x3 = Array.unsafe_get ad (a3 + k)
    and x4 = Array.unsafe_get ad (a4 + k)
    and x5 = Array.unsafe_get ad (a5 + k)
    and y0 = Array.unsafe_get bd (b0 + k)
    and y1 = Array.unsafe_get bd (b1 + k) in
    c00 := !c00 +. (x0 *. y0) ;
    c01 := !c01 +. (x0 *. y1) ;
    c10 := !c10 +. (x1 *. y0) ;
    c11 := !c11 +. (x1 *. y1) ;
    c20 := !c20 +. (x2 *. y0) ;
    c21 := !c21 +. (x2 *. y1) ;
    c30 := !c30 +. (x3 *. y0) ;
    c31 := !c31 +. (x3 *. y1) ;
    c40 := !c40 +. (x4 *. y0) ;
    c41 := !c41 +. (x4 *. y1) ;
    c50 := !c50 +. (x5 *. y0) ;
    c51 := !c51 +. (x5 *. y1)
  done ;
  let r1 = co + cs in
  let r2 = r1 + cs in
  let r3 = r2 + cs in
  let r4 = r3 + cs in
  let r5 = r4 + cs in
  Array.unsafe_set cd co !c00 ;
  Array.unsafe_set cd (co + 1) !c01 ;
  Array.unsafe_set cd r1 !c10 ;
  Array.unsafe_set cd (r1 + 1) !c11 ;
  Array.unsafe_set cd r2 !c20 ;
  Array.unsafe_set cd (r2 + 1) !c21 ;
  Array.unsafe_set cd r3 !c30 ;
  Array.unsafe_set cd (r3 + 1) !c31 ;
  Array.unsafe_set cd r4 !c40 ;
  Array.unsafe_set cd (r4 + 1) !c41 ;
  Array.unsafe_set cd r5 !c50 ;
  Array.unsafe_set cd (r5 + 1) !c51 ;
  if mco >= 0 then begin
    let m1 = mco + cs in
    Array.unsafe_set cd mco !c00 ;
    Array.unsafe_set cd (mco + 1) !c10 ;
    Array.unsafe_set cd (mco + 2) !c20 ;
    Array.unsafe_set cd (mco + 3) !c30 ;
    Array.unsafe_set cd (mco + 4) !c40 ;
    Array.unsafe_set cd (mco + 5) !c50 ;
    Array.unsafe_set cd m1 !c01 ;
    Array.unsafe_set cd (m1 + 1) !c11 ;
    Array.unsafe_set cd (m1 + 2) !c21 ;
    Array.unsafe_set cd (m1 + 3) !c31 ;
    Array.unsafe_set cd (m1 + 4) !c41 ;
    Array.unsafe_set cd (m1 + 5) !c51
  end

(* Edge tiles: per-cell dot products, identical to the reference loop.
   [tri] clips to j >= i; [mco >= 0] adds the mirror store. *)
let dot_gen ad lda bd ldb cd cs ~i0 ~j0 ~mrb ~nrb ~tri ~mco ~kk =
  for rr = 0 to mrb - 1 do
    let abase = (i0 + rr) * lda in
    let jlo = if tri then max 0 (i0 + rr - j0) else 0 in
    for jj = jlo to nrb - 1 do
      let bbase = (j0 + jj) * ldb in
      let acc = ref 0.0 in
      for k = 0 to kk - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (abase + k) *. Array.unsafe_get bd (bbase + k))
      done ;
      let v = !acc in
      Array.unsafe_set cd (((i0 + rr) * cs) + j0 + jj) v ;
      if mco >= 0 then Array.unsafe_set cd (mco + (jj * cs) + rr) v
    done
  done

(* Macro driver for the dot-shaped kernels: block output columns by nc
   so the nr B-rows of a tile stay cache-warm across the row sweep,
   register-tile with mr × nr. [sym] turns on the upper-triangle
   clipping and mirror stores (tcrossprod). *)
let dot_blocked ~p ~sym ad lda bd ldb cd cs ~rlo ~rhi ~cols ~kk =
  let { Tune.nc; mr; nr; _ } = p in
  let jc = ref 0 in
  while !jc < cols do
    let jhi = min cols (!jc + nc) in
    let ir = ref rlo in
    while !ir < rhi do
      let mrb = min mr (rhi - !ir) in
      let i0 = !ir in
      let jr = ref !jc in
      while !jr < jhi do
        let nrb = min nr (jhi - !jr) in
        let j0 = !jr in
        if (not sym) || j0 + nrb - 1 >= i0 then begin
          let mco = if sym then (j0 * cs) + i0 else -1 in
          if (not sym) || j0 >= i0 + mrb - 1 then begin
            let co = (i0 * cs) + j0 in
            if mrb = 4 && nrb = 4 then
              dot_4x4 ad (i0 * lda) lda bd (j0 * ldb) ldb cd co cs ~mco ~kk
            else if mrb = 6 && nrb = 2 then
              dot_6x2 ad (i0 * lda) lda bd (j0 * ldb) ldb cd co cs ~mco ~kk
            else dot_gen ad lda bd ldb cd cs ~i0 ~j0 ~mrb ~nrb ~tri:false ~mco ~kk
          end
          else dot_gen ad lda bd ldb cd cs ~i0 ~j0 ~mrb ~nrb ~tri:true ~mco ~kk
        end ;
        jr := !jr + nr
      done ;
      ir := !ir + mr
    done ;
    jc := !jc + nc
  done

(* ---- kernels ---- *)

(* C ← A·B + beta·C, explicit profile (the autotuner times candidate
   profiles through this entry). [c] must not alias [a] or [b]. *)
let gemm_into_p ~p ?exec ?(beta = 0.0) a b ~c =
  let m = Dense.rows a and ka = Dense.cols a in
  let kb = Dense.rows b and n = Dense.cols b in
  if ka <> kb then dim_error "gemm_into" a b ;
  if Dense.rows c <> m || Dense.cols c <> n then
    invalid_arg "Blas.gemm_into: output dim mismatch" ;
  apply_beta ?exec beta c ;
  Flops.addf (2.0 *. float_of_int m *. float_of_int ka *. float_of_int n) ;
  let ad = Dense.data a and bd = Dense.data b and cd = Dense.data c in
  let pack_a = pack_a_rows ad ka and pack_b = pack_b_panel bd n in
  let body lo hi =
    blocked ~p ~tri:false cd n ~rlo:lo ~rhi:hi ~klo:0 ~khi:ka ~clo:0 ~chi:n
      ~pack_a ~pack_b
  in
  Exec.parallel_for
    ~min_chunk:(min_rows ~grain:p.Tune.grain (2 * ka * n))
    (Exec.resolve exec) ~lo:0 ~hi:m body

(* ---- autotuning ----

   The sweep workload is one sequential gemm on fixed pseudo-random
   square matrices — big enough to exercise all three blocking levels,
   small enough that a full sweep stays sub-second per candidate. Flop
   counting is disabled inside timing loops. The timer defaults to
   Sys.time (CPU time — exact for the sequential sweep; wall clocks
   live behind lib/serve/clock.ml and lib/workload/timing.ml, E204, so
   callers with a real clock inject it). *)

let tune_n = 192
let tune_flops = 2.0 *. float_of_int tune_n *. float_of_int tune_n *. float_of_int tune_n

let tune_mat seed =
  let m = Dense.create tune_n tune_n in
  let d = Dense.data m in
  let state = ref (seed land 0x3FFFFFFF) in
  for i = 0 to (tune_n * tune_n) - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF ;
    d.(i) <- float_of_int ((!state land 1023) - 512) /. 512.0
  done ;
  m

let tune_inputs =
  lazy
    (let a = tune_mat 1 and b = tune_mat 2 in
     (a, b, Dense.create tune_n tune_n))

let tune_run now p =
  Flops.with_disabled (fun () ->
      let a, b, c = Lazy.force tune_inputs in
      gemm_into_p ~p ~exec:Exec.seq a b ~c ;
      let t0 = now () in
      gemm_into_p ~p ~exec:Exec.seq a b ~c ;
      gemm_into_p ~p ~exec:Exec.seq a b ~c ;
      (now () -. t0) /. 2.0)

(* The process profile; in auto mode the first kernel call runs a quick
   sweep here and persists the winner. *)
let profile () =
  Tune.ensure ~quick:true ~flops:tune_flops ~run:(tune_run Sys.time) ()

(* Full sweep plus a dispatch-overhead measurement on a 2-domain pool,
   for `morpheus tune` and the Cost calibration. Sets (but does not
   persist) the winning profile; returns it with the timing table. *)
let autotune ?(quick = false) ?(now = Sys.time) () =
  let best, table = Tune.sweep ~quick ~flops:tune_flops ~run:(tune_run now) () in
  let dispatch_overhead =
    Flops.with_disabled (fun () ->
        let e = Exec.par ~domains:2 in
        let arr = Array.make 1024 0.0 in
        let body lo hi =
          for i = lo to hi - 1 do
            Array.unsafe_set arr i (Array.unsafe_get arr i +. 1.0)
          done
        in
        Exec.parallel_for ~min_chunk:1 e ~lo:0 ~hi:1024 body ;
        let reps = 100 in
        let t0 = now () in
        for _ = 1 to reps do
          Exec.parallel_for ~min_chunk:1 e ~lo:0 ~hi:1024 body
        done ;
        let dt = now () -. t0 in
        Exec.shutdown e ;
        max 0.0 (dt /. float_of_int reps))
  in
  let best = { best with Tune.dispatch_overhead } in
  Tune.set best ;
  (best, table)

let gemm_into ?exec ?beta a b ~c = gemm_into_p ~p:(profile ()) ?exec ?beta a b ~c

(* C = A * B. The pure kernel is [gemm_into ~beta:0.] into a fresh C,
   so both are bitwise identical by construction. *)
let gemm ?exec a b =
  if Dense.cols a <> Dense.rows b then dim_error "gemm" a b ;
  let c = Dense.create (Dense.rows a) (Dense.cols b) in
  gemm_into ?exec ~beta:0.0 a b ~c ;
  c

(* C = Aᵀ * B, without materializing Aᵀ: a reduction over A's rows. Each
   chunk runs the blocked driver over its own depth range [lo, hi) —
   ascending, so per-cell order within a chunk matches the reference —
   and the canonical reduce grid combines partials as before. *)
let tgemm ?exec a b =
  let ka = Dense.rows a and m = Dense.cols a in
  let kb = Dense.rows b and n = Dense.cols b in
  if ka <> kb then dim_error "tgemm" a b ;
  Flops.addf (2.0 *. float_of_int m *. float_of_int ka *. float_of_int n) ;
  if ka = 0 then Dense.create m n
  else begin
    let p = profile () in
    let ad = Dense.data a and bd = Dense.data b in
    let pack_a = pack_a_trans ad m and pack_b = pack_b_panel bd n in
    let body lo hi =
      let c = Dense.create m n in
      blocked ~p ~tri:false (Dense.data c) n ~rlo:0 ~rhi:m ~klo:lo ~khi:hi
        ~clo:0 ~chi:n ~pack_a ~pack_b ;
      c
    in
    Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:ka ~body ~combine:add_into
  end

(* C = A * Bᵀ, without materializing Bᵀ. *)
let gemm_nt ?exec a b =
  let m = Dense.rows a and ka = Dense.cols a in
  let n = Dense.rows b and kb = Dense.cols b in
  if ka <> kb then dim_error "gemm_nt" a b ;
  Flops.addf (2.0 *. float_of_int m *. float_of_int ka *. float_of_int n) ;
  let p = profile () in
  let c = Dense.create m n in
  let ad = Dense.data a and bd = Dense.data b and cd = Dense.data c in
  let body lo hi =
    dot_blocked ~p ~sym:false ad ka bd kb cd n ~rlo:lo ~rhi:hi ~cols:n ~kk:ka
  in
  Exec.parallel_for
    ~min_chunk:(min_rows ~grain:p.Tune.grain (2 * ka * n))
    (Exec.resolve exec) ~lo:0 ~hi:m body ;
  c

(* crossprod(A) = Aᵀ A, exploiting symmetry: only the upper triangle is
   computed, then mirrored. This is the ~(1/2) n d² saving the paper's
   Algorithm 2 relies on when it calls crossprod(S) instead of SᵀS. *)
let crossprod ?exec a =
  let n = Dense.rows a and d = Dense.cols a in
  Flops.addf (float_of_int n *. float_of_int d *. float_of_int (d + 1)) ;
  if n = 0 then Dense.create d d
  else begin
    let p = profile () in
    let ad = Dense.data a in
    let pack_a = pack_a_trans ad d and pack_b = pack_b_panel ad d in
    let body lo hi =
      let c = Dense.create d d in
      blocked ~p ~tri:true (Dense.data c) d ~rlo:0 ~rhi:d ~klo:lo ~khi:hi
        ~clo:0 ~chi:d ~pack_a ~pack_b ;
      c
    in
    let c = Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:n ~body ~combine:add_into in
    mirror_lower c d ;
    c
  end

(* Aᵀ diag(w) A — the weighted cross-product at the heart of the paper's
   efficient rewrite (Algorithm 2): crossprod(diag(colSums K)^(1/2) R)
   is computed here directly as Rᵀ diag(counts) R without forming the
   scaled copy of R. The weight product happens while packing the
   A-side panel (see {!pack_a_trans_w}), preserving the reference's
   zero-weight row-skip bit-for-bit. *)
let weighted_crossprod ?exec a w =
  let n = Dense.rows a and d = Dense.cols a in
  if Array.length w <> n then
    invalid_arg "Blas.weighted_crossprod: weight length mismatch" ;
  Flops.addf (float_of_int n *. float_of_int d *. float_of_int (d + 2)) ;
  if n = 0 then Dense.create d d
  else begin
    let p = profile () in
    let ad = Dense.data a in
    let pack_a = pack_a_trans_w ad d w and pack_b = pack_b_panel ad d in
    let body lo hi =
      let c = Dense.create d d in
      blocked ~p ~tri:true (Dense.data c) d ~rlo:0 ~rhi:d ~klo:lo ~khi:hi
        ~clo:0 ~chi:d ~pack_a ~pack_b ;
      c
    in
    let c = Exec.reduce (Exec.resolve exec) ~lo:0 ~hi:n ~body ~combine:add_into in
    mirror_lower c d ;
    c
  end

(* tcrossprod(A) = A Aᵀ (the Gram matrix when rows are examples). Rows
   [i] of the output (and their mirror column) are disjoint across
   tasks, so this partitions output rows like gemm. *)
let tcrossprod ?exec a =
  let n = Dense.rows a and d = Dense.cols a in
  Flops.addf (float_of_int n *. float_of_int (n + 1) *. float_of_int d) ;
  let p = profile () in
  let c = Dense.create n n in
  let ad = Dense.data a and cd = Dense.data c in
  let body lo hi =
    dot_blocked ~p ~sym:true ad d ad d cd n ~rlo:lo ~rhi:hi ~cols:n ~kk:d
  in
  Exec.parallel_for
    ~min_chunk:(min_rows ~grain:p.Tune.grain (n * d))
    (Exec.resolve exec) ~lo:0 ~hi:n body ;
  c

(* y ← A·x + beta·y for plain float-array vectors. Four-row register
   tiling shares each x load across rows; per row the j-ascending
   accumulation and the final beta formula are the reference's. The
   dot-product body is shared with [gemv] (which is [gemv_into
   ~beta:0.] into a fresh y), so both are bitwise identical. [y] must
   not alias [x]. *)
let gemv_into ?exec ?(beta = 0.0) a x ~y =
  let m = Dense.rows a and k = Dense.cols a in
  if Array.length x <> k then invalid_arg "Blas.gemv_into: dim mismatch" ;
  if Array.length y <> m then
    invalid_arg "Blas.gemv_into: output dim mismatch" ;
  Flops.add (2 * m * k) ;
  let p = profile () in
  let ad = Dense.data a in
  let store i acc =
    y.(i) <-
      (if beta = 0.0 then acc
       else if beta = 1.0 then y.(i) +. acc
       else (beta *. y.(i)) +. acc)
  in
  let body lo hi =
    let i = ref lo in
    while hi - !i >= 4 do
      let b0 = !i * k in
      let b1 = b0 + k in
      let b2 = b1 + k in
      let b3 = b2 + k in
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      for j = 0 to k - 1 do
        let xv = Array.unsafe_get x j in
        s0 := !s0 +. (Array.unsafe_get ad (b0 + j) *. xv) ;
        s1 := !s1 +. (Array.unsafe_get ad (b1 + j) *. xv) ;
        s2 := !s2 +. (Array.unsafe_get ad (b2 + j) *. xv) ;
        s3 := !s3 +. (Array.unsafe_get ad (b3 + j) *. xv)
      done ;
      store !i !s0 ;
      store (!i + 1) !s1 ;
      store (!i + 2) !s2 ;
      store (!i + 3) !s3 ;
      i := !i + 4
    done ;
    while !i < hi do
      let base = !i * k in
      let acc = ref 0.0 in
      for j = 0 to k - 1 do
        acc := !acc +. (Array.unsafe_get ad (base + j) *. Array.unsafe_get x j)
      done ;
      store !i !acc ;
      i := !i + 1
    done
  in
  Exec.parallel_for
    ~min_chunk:(min_rows ~grain:p.Tune.grain (2 * k))
    (Exec.resolve exec) ~lo:0 ~hi:m body

(* y = A x for a plain float-array vector x. *)
let gemv ?exec a x =
  let y = Array.make (Dense.rows a) 0.0 in
  gemv_into ?exec ~beta:0.0 a x ~y ;
  y

let dot x y =
  if Array.length x <> Array.length y then invalid_arg "Blas.dot" ;
  Flops.add (2 * Array.length x) ;
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
  done ;
  !acc
