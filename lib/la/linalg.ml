(* Matrix factorizations and (pseudo-)inversion — the LAPACK-shaped part
   of the substrate. The paper's ginv is R/MASS's Moore-Penrose
   pseudo-inverse computed through an economic SVD (Table 11 note); here
   SVD is implemented with one-sided Jacobi and symmetric
   eigendecomposition with cyclic Jacobi, both of which are simple,
   numerically robust, and O(d³) like the paper assumes. *)

let sq x = x *. x

(* ---------------- LU with partial pivoting ---------------- *)

type lu = { lu : Dense.t; perm : int array; sign : float }

exception Singular

let lu_decompose a =
  let n = Dense.rows a in
  if Dense.cols a <> n then invalid_arg "Linalg.lu_decompose: not square" ;
  Flops.addf (2.0 /. 3.0 *. float_of_int n ** 3.0) ;
  let m = Dense.copy a in
  let perm = Array.init n Fun.id in
  let sign = ref 1.0 in
  for k = 0 to n - 1 do
    (* pivot *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Dense.unsafe_get m i k) > Float.abs (Dense.unsafe_get m !piv k)
      then piv := i
    done ;
    if Float.abs (Dense.unsafe_get m !piv k) < 1e-13 then raise Singular ;
    if !piv <> k then begin
      for j = 0 to n - 1 do
        let t = Dense.unsafe_get m k j in
        Dense.unsafe_set m k j (Dense.unsafe_get m !piv j) ;
        Dense.unsafe_set m !piv j t
      done ;
      let t = perm.(k) in
      perm.(k) <- perm.(!piv) ;
      perm.(!piv) <- t ;
      sign := -. !sign
    end ;
    let pivot = Dense.unsafe_get m k k in
    for i = k + 1 to n - 1 do
      let f = Dense.unsafe_get m i k /. pivot in
      Dense.unsafe_set m i k f ;
      if f <> 0.0 then
        for j = k + 1 to n - 1 do
          Dense.unsafe_set m i j
            (Dense.unsafe_get m i j -. (f *. Dense.unsafe_get m k j))
        done
    done
  done ;
  { lu = m; perm; sign = !sign }

(* Solve A x = b (b given as a matrix of right-hand-side columns). *)
let lu_solve { lu = m; perm; _ } b =
  let n = Dense.rows m in
  if Dense.rows b <> n then invalid_arg "Linalg.lu_solve: dim mismatch" ;
  let k = Dense.cols b in
  Flops.addf (2.0 *. float_of_int (n * n * k)) ;
  let x = Dense.init n k (fun i j -> Dense.unsafe_get b perm.(i) j) in
  (* forward substitution (unit lower) *)
  for i = 0 to n - 1 do
    for p = 0 to i - 1 do
      let f = Dense.unsafe_get m i p in
      if f <> 0.0 then
        for j = 0 to k - 1 do
          Dense.unsafe_set x i j
            (Dense.unsafe_get x i j -. (f *. Dense.unsafe_get x p j))
        done
    done
  done ;
  (* back substitution *)
  for i = n - 1 downto 0 do
    for p = i + 1 to n - 1 do
      let f = Dense.unsafe_get m i p in
      if f <> 0.0 then
        for j = 0 to k - 1 do
          Dense.unsafe_set x i j
            (Dense.unsafe_get x i j -. (f *. Dense.unsafe_get x p j))
        done
    done ;
    let d = Dense.unsafe_get m i i in
    for j = 0 to k - 1 do
      Dense.unsafe_set x i j (Dense.unsafe_get x i j /. d)
    done
  done ;
  x

(* R's solve(A, B): exact solve for a nonsingular square system. *)
let solve a b = lu_solve (lu_decompose a) b

let inverse a = solve a (Dense.identity (Dense.rows a))

let determinant a =
  match lu_decompose a with
  | { lu; sign; _ } ->
    let n = Dense.rows lu in
    let acc = ref sign in
    for i = 0 to n - 1 do
      acc := !acc *. Dense.unsafe_get lu i i
    done ;
    !acc
  | exception Singular -> 0.0

(* ---------------- Cholesky (SPD) ---------------- *)

exception Not_positive_definite

(* Lower-triangular L with A = L Lᵀ. *)
let cholesky a =
  let n = Dense.rows a in
  if Dense.cols a <> n then invalid_arg "Linalg.cholesky: not square" ;
  Flops.addf (1.0 /. 3.0 *. float_of_int n ** 3.0) ;
  let l = Dense.create n n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Dense.unsafe_get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Dense.unsafe_get l i k *. Dense.unsafe_get l j k)
      done ;
      if i = j then begin
        if !acc <= 0.0 then raise Not_positive_definite ;
        Dense.unsafe_set l i j (sqrt !acc)
      end
      else Dense.unsafe_set l i j (!acc /. Dense.unsafe_get l j j)
    done
  done ;
  l

(* ---------------- QR (Householder) ---------------- *)

(* Thin QR of a matrix with rows >= cols: a = q·r with q n×d
   orthonormal-column, r d×d upper-triangular. *)
let qr a =
  let n = Dense.rows a and d = Dense.cols a in
  if n < d then invalid_arg "Linalg.qr: need rows >= cols" ;
  Flops.addf (2.0 *. float_of_int n *. float_of_int d *. float_of_int d) ;
  let r = Dense.copy a in
  (* accumulate Householder vectors to build thin Q at the end *)
  let vs = Array.make d [||] in
  for k = 0 to d - 1 do
    (* build the Householder vector for column k below the diagonal *)
    let norm = ref 0.0 in
    for i = k to n - 1 do
      norm := !norm +. sq (Dense.unsafe_get r i k)
    done ;
    let norm = sqrt !norm in
    if norm > 1e-300 then begin
      let akk = Dense.unsafe_get r k k in
      let alpha = if akk >= 0.0 then -.norm else norm in
      let v = Array.make (n - k) 0.0 in
      v.(0) <- akk -. alpha ;
      for i = k + 1 to n - 1 do
        v.(i - k) <- Dense.unsafe_get r i k
      done ;
      let vnorm2 = Array.fold_left (fun acc x -> acc +. sq x) 0.0 v in
      if vnorm2 > 1e-300 then begin
        vs.(k) <- v ;
        (* apply H = I - 2vvᵀ/(vᵀv) to the trailing columns of r *)
        for j = k to d - 1 do
          let dot = ref 0.0 in
          for i = k to n - 1 do
            dot := !dot +. (v.(i - k) *. Dense.unsafe_get r i j)
          done ;
          let f = 2.0 *. !dot /. vnorm2 in
          for i = k to n - 1 do
            Dense.unsafe_set r i j
              (Dense.unsafe_get r i j -. (f *. v.(i - k)))
          done
        done
      end
    end
  done ;
  (* thin Q = H₀·H₁·…·H_{d-1} applied to the first d identity columns *)
  let q = Dense.init n d (fun i j -> if i = j then 1.0 else 0.0) in
  for k = d - 1 downto 0 do
    let v = vs.(k) in
    if Array.length v > 0 then begin
      let vnorm2 = Array.fold_left (fun acc x -> acc +. sq x) 0.0 v in
      for j = 0 to d - 1 do
        let dot = ref 0.0 in
        for i = k to n - 1 do
          dot := !dot +. (v.(i - k) *. Dense.unsafe_get q i j)
        done ;
        let f = 2.0 *. !dot /. vnorm2 in
        for i = k to n - 1 do
          Dense.unsafe_set q i j (Dense.unsafe_get q i j -. (f *. v.(i - k)))
        done
      done
    end
  done ;
  (* r: keep the top d×d upper triangle *)
  let r_out = Dense.init d d (fun i j -> if j >= i then Dense.unsafe_get r i j else 0.0) in
  (q, r_out)

(* Least squares via QR for full-column-rank systems:
   min ‖a·x − b‖ with x = R⁻¹ Qᵀ b (back substitution). *)
let lstsq_qr a b =
  let q, r = qr a in
  let qtb = Blas.tgemm q b in
  let d = Dense.cols r and k = Dense.cols qtb in
  let x = Dense.copy qtb in
  for i = d - 1 downto 0 do
    let rii = Dense.unsafe_get r i i in
    if Float.abs rii < 1e-13 then raise Singular ;
    for j = 0 to k - 1 do
      let acc = ref (Dense.unsafe_get x i j) in
      for p = i + 1 to d - 1 do
        acc := !acc -. (Dense.unsafe_get r i p *. Dense.unsafe_get x p j)
      done ;
      Dense.unsafe_set x i j (!acc /. rii)
    done
  done ;
  x

(* ---------------- Symmetric eigendecomposition (cyclic Jacobi) ------- *)

(* Returns (eigenvalues, V) with A = V diag(vals) Vᵀ, V orthogonal.
   Eigenvalues are not sorted. *)
let sym_eig ?(max_sweeps = 64) ?(tol = 1e-12) a =
  let n = Dense.rows a in
  if Dense.cols a <> n then invalid_arg "Linalg.sym_eig: not square" ;
  Flops.addf (9.0 *. float_of_int n ** 3.0) ;
  let m = Dense.copy a in
  let v = Dense.identity n in
  let off m =
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc +. sq (Dense.unsafe_get m i j)
      done
    done ;
    !acc
  in
  let scale = Float.max 1e-300 (Dense.max_abs m) in
  let sweep = ref 0 in
  while !sweep < max_sweeps && off m > tol *. tol *. scale *. scale do
    incr sweep ;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = Dense.unsafe_get m p q in
        if Float.abs apq > 1e-300 then begin
          let app = Dense.unsafe_get m p p and aqq = Dense.unsafe_get m q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt (sq theta +. 1.0))
          in
          let c = 1.0 /. sqrt (sq t +. 1.0) in
          let s = t *. c in
          (* rotate rows/cols p,q of m *)
          for k = 0 to n - 1 do
            let mkp = Dense.unsafe_get m k p and mkq = Dense.unsafe_get m k q in
            Dense.unsafe_set m k p ((c *. mkp) -. (s *. mkq)) ;
            Dense.unsafe_set m k q ((s *. mkp) +. (c *. mkq))
          done ;
          for k = 0 to n - 1 do
            let mpk = Dense.unsafe_get m p k and mqk = Dense.unsafe_get m q k in
            Dense.unsafe_set m p k ((c *. mpk) -. (s *. mqk)) ;
            Dense.unsafe_set m q k ((s *. mpk) +. (c *. mqk))
          done ;
          for k = 0 to n - 1 do
            let vkp = Dense.unsafe_get v k p and vkq = Dense.unsafe_get v k q in
            Dense.unsafe_set v k p ((c *. vkp) -. (s *. vkq)) ;
            Dense.unsafe_set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done ;
  (Dense.diag m, v)

(* Moore-Penrose pseudo-inverse of a symmetric matrix via eigen-
   decomposition: V diag(1/λᵢ if |λᵢ| > tol else 0) Vᵀ. *)
let ginv_sym ?tol a =
  let vals, v = sym_eig a in
  let n = Array.length vals in
  let vmax = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 vals in
  let cutoff =
    match tol with Some t -> t | None -> float_of_int n *. vmax *. 1e-12
  in
  let inv = Array.map (fun l -> if Float.abs l > cutoff then 1.0 /. l else 0.0) vals in
  (* V diag(inv) Vᵀ *)
  let scaled =
    Dense.init n n (fun i j -> Dense.unsafe_get v i j *. inv.(j))
  in
  Blas.gemm_nt scaled v

(* ---------------- One-sided Jacobi SVD ---------------- *)

(* Thin SVD of a with rows >= cols: a = U diag(s) Vᵀ, U: n×d with
   orthonormal columns (zero columns where the singular value is 0),
   V: d×d orthogonal. *)
let svd_tall ?(max_sweeps = 64) ?(tol = 1e-12) a =
  let n = Dense.rows a and d = Dense.cols a in
  if n < d then invalid_arg "Linalg.svd_tall: need rows >= cols" ;
  Flops.addf (4.0 *. float_of_int n *. float_of_int d *. float_of_int d) ;
  let u = Dense.copy a in
  let v = Dense.identity d in
  let converged = ref false in
  let sweep = ref 0 in
  while not !converged && !sweep < max_sweeps do
    incr sweep ;
    converged := true ;
    for p = 0 to d - 2 do
      for q = p + 1 to d - 1 do
        (* inner products of columns p and q *)
        let app = ref 0.0 and aqq = ref 0.0 and apq = ref 0.0 in
        for i = 0 to n - 1 do
          let uip = Dense.unsafe_get u i p and uiq = Dense.unsafe_get u i q in
          app := !app +. (uip *. uip) ;
          aqq := !aqq +. (uiq *. uiq) ;
          apq := !apq +. (uip *. uiq)
        done ;
        if Float.abs !apq > tol *. sqrt (!app *. !aqq) +. 1e-300 then begin
          converged := false ;
          let theta = (!aqq -. !app) /. (2.0 *. !apq) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt (sq theta +. 1.0))
          in
          let c = 1.0 /. sqrt (sq t +. 1.0) in
          let s = t *. c in
          for i = 0 to n - 1 do
            let uip = Dense.unsafe_get u i p and uiq = Dense.unsafe_get u i q in
            Dense.unsafe_set u i p ((c *. uip) -. (s *. uiq)) ;
            Dense.unsafe_set u i q ((s *. uip) +. (c *. uiq))
          done ;
          for i = 0 to d - 1 do
            let vip = Dense.unsafe_get v i p and viq = Dense.unsafe_get v i q in
            Dense.unsafe_set v i p ((c *. vip) -. (s *. viq)) ;
            Dense.unsafe_set v i q ((s *. vip) +. (c *. viq))
          done
        end
      done
    done
  done ;
  (* extract singular values = column norms of u; normalize columns *)
  let s = Array.make d 0.0 in
  for j = 0 to d - 1 do
    let norm = ref 0.0 in
    for i = 0 to n - 1 do
      norm := !norm +. sq (Dense.unsafe_get u i j)
    done ;
    let norm = sqrt !norm in
    s.(j) <- norm ;
    if norm > 0.0 then
      for i = 0 to n - 1 do
        Dense.unsafe_set u i j (Dense.unsafe_get u i j /. norm)
      done
  done ;
  (u, s, v)

(* Economic SVD of any matrix (transposes internally when wide). Returns
   (u, s, v) with a = u diag(s) vᵀ. *)
let svd a =
  if Dense.rows a >= Dense.cols a then svd_tall a
  else begin
    let u', s, v' = svd_tall (Dense.transpose a) in
    (v', s, u')
  end

(* Moore-Penrose pseudo-inverse via economic SVD, like R MASS::ginv. *)
let ginv ?tol a =
  let u, s, v = svd a in
  let smax = Array.fold_left Float.max 0.0 s in
  let cutoff =
    match tol with
    | Some t -> t
    | None -> float_of_int (max (Dense.rows a) (Dense.cols a)) *. smax *. 1e-12
  in
  let inv = Array.map (fun x -> if x > cutoff then 1.0 /. x else 0.0) s in
  (* v diag(inv) uᵀ *)
  let scaled =
    Dense.init (Dense.rows v) (Dense.cols v) (fun i j ->
        Dense.unsafe_get v i j *. inv.(j))
  in
  Blas.gemm_nt scaled u

(* Least-squares solve of (possibly singular / rectangular) A x = B via
   the pseudo-inverse: x = ginv(A) B. *)
let lstsq a b = Blas.gemm (ginv a) b
