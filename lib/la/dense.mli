(** Dense row-major matrices over [float array] — the "regular matrix"
    type of the whole system (the paper's plain R matrices). *)

type t
(** A dense matrix. Values are mutable through {!set}/{!unsafe_set};
    all bulk operations return fresh matrices. *)

(** {1 Dimensions and raw access} *)

val rows : t -> int
val cols : t -> int

val dims : t -> int * int
(** [(rows, cols)]. *)

val data : t -> float array
(** The underlying row-major buffer (shared, not copied). *)

val numel : t -> int
(** Number of entries, [rows * cols]. *)

(** {1 Construction} *)

val create : int -> int -> t
(** [create rows cols] is the all-zero matrix. *)

val make : int -> int -> float -> t
(** [make rows cols x] fills every entry with [x]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] sets entry [(i, j)] to [f i j]. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Wrap an existing row-major buffer without copying; the caller gives
    up ownership. Raises [Invalid_argument] on length mismatch. *)

val zeros : int -> int -> t
val ones : int -> int -> t

val identity : int -> t
(** [identity n] is the [n]×[n] identity matrix. *)

val of_arrays : float array array -> t
(** Rows from an array of arrays; raises on ragged input. *)

val to_arrays : t -> float array array

val of_col_array : float array -> t
(** An [n]×1 column vector. *)

val of_row_array : float array -> t
(** A 1×[n] row vector. *)

val col_to_array : t -> float array
(** Contents of an [n]×1 matrix; raises if not a column vector. *)

val row_to_array : t -> float array
(** Contents of a 1×[n] matrix; raises if not a row vector. *)

val copy : t -> t

val random : ?rng:Rng.t -> int -> int -> t
(** Entries uniform in [0, 1). *)

val gaussian : ?rng:Rng.t -> int -> int -> t
(** Entries standard normal. *)

(** {1 Element access} *)

val get : t -> int -> int -> float
(** Bounds-checked; raises [Invalid_argument] out of range. *)

val set : t -> int -> int -> float -> unit

val unsafe_get : t -> int -> int -> float
(** No bounds check — kernel use only. *)

val unsafe_set : t -> int -> int -> float -> unit

val row : t -> int -> float array
(** Copy of row [i]. *)

val col : t -> int -> float array
(** Copy of column [j]. *)

(** {1 Shaping} *)

val sub_rows : t -> lo:int -> hi:int -> t
(** Rows [lo, hi) as a fresh matrix (R's [T\[lo:hi, \]]). *)

val sub_cols : t -> lo:int -> hi:int -> t
(** Columns [lo, hi) as a fresh matrix (R's [T\[, lo:hi\]]). *)

val transpose : t -> t

val hcat : t list -> t
(** Horizontal concatenation [[A | B | …]]; blocks must share rows. *)

val vcat : t list -> t
(** Vertical concatenation; blocks must share columns. *)

val blit_block : src:t -> dst:t -> row:int -> col:int -> unit
(** Write [src] into [dst] with its top-left corner at [(row, col)]. *)

(** {1 Functional traversal} *)

val map : (float -> float) -> t -> t
val mapi : (int -> int -> float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val iteri : (int -> int -> float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

(** {1 Element-wise scalar operators (paper §3.3.1, on regular matrices)} *)

val scale : float -> t -> t
(** [scale x m] is [x·m]; counts flops. *)

val add_scalar : float -> t -> t
val pow_scalar : t -> float -> t

val map_scalar : (float -> float) -> t -> t
(** Like {!map} but counted as one arithmetic pass in {!Flops}. *)

val exp : t -> t
val log : t -> t

(** {1 Element-wise matrix operators} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul_elem : t -> t -> t
val div_elem : t -> t -> t

(** {1 In-place / accumulating kernels}

    Allocation-free variants for iteration loops (see
    docs/PERFORMANCE.md): the destination is fully overwritten (or
    accumulated into) and must have exactly the source shape. These
    element-wise destinations {e may} alias an input — each element
    depends only on its own flat index. Bodies run through {!Exec};
    results are bitwise-identical to the pure counterparts on both
    backends. *)

val fill : t -> float -> unit
(** Set every entry to the given value (workspace reset). Not counted
    as flops. *)

val axpy : ?exec:Exec.t -> alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] is [y ← y + alpha·x] — the allocation-free
    gradient step [w ← w + α·g]. *)

val scale_into : ?exec:Exec.t -> float -> t -> out:t -> unit
(** [scale_into alpha src ~out] is [out ← alpha·src]; [out] may alias
    [src]. *)

val map2_into : ?exec:Exec.t -> (float -> float -> float) -> t -> t -> out:t -> unit
(** [map2_into f a b ~out] applies [f] element-wise; [out] may alias
    [a] or [b]. Counted as one arithmetic pass. *)

(** {1 Aggregations (paper §3.3.2, on regular matrices)} *)

val row_sums : t -> t
(** [n]×1 column of row sums (R's [rowSums]). *)

val col_sums : t -> t
(** 1×[d] row of column sums (R's [colSums]). *)

val sum : t -> float

val row_mins : t -> t
(** Per-row minimum as an [n]×1 column (R's [rowMin], used by K-Means). *)

val row_argmins : t -> int array
(** Index of each row's minimum. *)

(** {1 Norms, comparison, diagonal} *)

val max_abs : t -> float
val frobenius : t -> float

val max_abs_diff : t -> t -> float
(** [infinity] when shapes differ. *)

val equal : t -> t -> bool
(** Exact structural equality. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Shape equality and [max_abs_diff <= tol] (default [1e-9]). *)

val diag_of_array : float array -> t
(** Diagonal matrix from a vector (the paper's [diag]). *)

val diag : t -> float array
(** The main diagonal. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
