(* AIMD concurrency limiter. The admission cap is a float that grows
   additively (+1/limit per good completion, so roughly +1 per
   round-trip of the whole window) while latency stays at or under
   target, and shrinks multiplicatively when completions fail or the
   latency ewma crosses the target. Decreases are rate-limited to one
   per [decrease_interval] so a single slow batch doesn't collapse the
   window to the floor.

   This bounds in-flight work by *observed capacity* rather than a
   static handler count: when a downstream stalls, latency rises, the
   limit backs off, and excess load is shed at admission (cheap,
   structured error) instead of queueing into deadline blowout. *)

type t = {
  m : Analysis.Sync.t;
  min_limit : float;
  max_limit : float;
  target : float;  (* latency target, seconds *)
  backoff : float;  (* multiplicative decrease factor *)
  decrease_interval : float;
  now : unit -> float;
  mutable limit : float;
  mutable in_flight : int;
  mutable ewma : float;  (* latency ewma, seconds; 0 until first sample *)
  mutable last_decrease : float;
  mutable admitted : int;
  mutable shed : int;
  mutable increases : int;
  mutable decreases : int;
}

let alpha = 0.2

let create ?(min_limit = 2.0) ?(max_limit = 256.0) ?(initial = 16.0)
    ?(backoff = 0.7) ?(decrease_interval = 0.1) ?(now = Clock.wall) ~target ()
    =
  if target <= 0.0 then invalid_arg "Limiter.create: target <= 0" ;
  if min_limit < 1.0 then invalid_arg "Limiter.create: min_limit < 1" ;
  if max_limit < min_limit then invalid_arg "Limiter.create: max < min" ;
  if backoff <= 0.0 || backoff >= 1.0 then
    invalid_arg "Limiter.create: backoff outside (0,1)" ;
  { m = Analysis.Sync.create ~name:"serve.limiter" ();
    min_limit;
    max_limit;
    target;
    backoff;
    decrease_interval;
    now;
    limit = Float.min max_limit (Float.max min_limit initial);
    in_flight = 0;
    ewma = 0.0;
    last_decrease = 0.0;
    admitted = 0;
    shed = 0;
    increases = 0;
    decreases = 0
  }

let locked t f =
  Analysis.Sync.lock t.m ;
  Fun.protect ~finally:(fun () -> Analysis.Sync.unlock t.m) f

let try_acquire t =
  locked t (fun () ->
      if float_of_int t.in_flight < t.limit then begin
        t.in_flight <- t.in_flight + 1 ;
        t.admitted <- t.admitted + 1 ;
        true
      end
      else begin
        t.shed <- t.shed + 1 ;
        false
      end)

let release t ~latency ~ok =
  locked t (fun () ->
      if t.in_flight > 0 then t.in_flight <- t.in_flight - 1 ;
      t.ewma <-
        (if t.ewma = 0.0 then latency
         else ((1.0 -. alpha) *. t.ewma) +. (alpha *. latency)) ;
      let now = t.now () in
      if (not ok) || t.ewma > t.target then begin
        if now -. t.last_decrease >= t.decrease_interval then begin
          t.limit <- Float.max t.min_limit (t.limit *. t.backoff) ;
          t.last_decrease <- now ;
          t.decreases <- t.decreases + 1
        end
      end
      else if t.limit < t.max_limit then begin
        t.limit <- Float.min t.max_limit (t.limit +. (1.0 /. t.limit)) ;
        t.increases <- t.increases + 1
      end)

let limit t = locked t (fun () -> t.limit)
let in_flight t = locked t (fun () -> t.in_flight)
let ewma t = locked t (fun () -> t.ewma)
let shed t = locked t (fun () -> t.shed)

let snapshot t =
  locked t (fun () ->
      ( Json.Obj
          [ ("limit", Json.Num t.limit);
            ("in_flight", Json.Num (float_of_int t.in_flight));
            ("latency_ewma_ms", Json.Num (t.ewma *. 1e3));
            ("target_ms", Json.Num (t.target *. 1e3));
            ("admitted", Json.Num (float_of_int t.admitted));
            ("shed", Json.Num (float_of_int t.shed));
            ("increases", Json.Num (float_of_int t.increases));
            ("decreases", Json.Num (float_of_int t.decreases))
          ] ))
