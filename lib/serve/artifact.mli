(** Trained-model artifacts: the serveable output of the ML layer, with
    one scoring semantics per kind and a marshal-safe persisted form.

    Scoring over a normalized dataset runs the same factorized rewrites
    the trainers use (lmm / tlmm / rowSums(T²)), so a server batch is a
    single factorized matrix product; every per-row value is
    bitwise-identical whether the row is scored alone or inside a batch
    (the rewrites accumulate each output row independently). *)

open La
open Morpheus

type t =
  | Logreg of Dense.t  (** d×1 weights; predictions are P(y = +1) *)
  | Linreg of Dense.t  (** d×1 weights; predictions are scores T·w *)
  | Glm of Ml_algs.Glm.family * Dense.t
      (** d×1 weights; predictions are the family's mean response *)
  | Kmeans of Dense.t  (** d×k centroids; predictions are cluster ids *)
  | Naive_bayes of Ml_algs.Naive_bayes.model
      (** predictions are class labels *)

val kind : t -> string
(** Stable kind tag: ["logreg"], ["linreg"], ["glm"], ["kmeans"],
    ["naive_bayes"]. *)

val feature_dim : t -> int
(** The d every scored row must have. *)

val describe : t -> string
(** One-line human summary (kind + dims + family/classes). *)

val score_normalized : t -> Normalized.t -> float array
(** One prediction per row of the normalized matrix, computed through
    the factorized rewrites (never materializes T except the Naive
    Bayes row slices). Raises [Invalid_argument] on a feature-dimension
    mismatch. *)

val score_dense : t -> Dense.t -> float array
(** One prediction per row of a dense feature matrix (the protocol's
    raw-rows path). *)

(** {1 Persistence} *)

type payload
(** Marshal-safe mirror of {!t} (plain ints, floats, arrays, strings —
    no abstract library types), the registry's on-disk form. *)

val to_payload : t -> payload

val of_payload : payload -> (t, string) result
(** Re-validates everything [Marshal] cannot: known GLM family, dense
    buffer lengths, Naive-Bayes invariants. *)
