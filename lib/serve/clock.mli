(** The serve stack's sanctioned wall-clock source.

    Raw [Unix.gettimeofday] outside this module (and the workload
    generator's [Timing]) is a lint error (E204): time must flow
    through a seam tests can fake, usually a [~now] parameter
    defaulting to {!wall}. *)

val wall : unit -> float
(** Seconds since the epoch, as [Unix.gettimeofday]. *)
