type t = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let connect ~socket =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try Unix.connect fd (ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ()) ;
     raise e) ;
  { fd; buf = Buffer.create 512; chunk = Bytes.create 4096 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let rec read_line t =
  let contents = Buffer.contents t.buf in
  match String.index_opt contents '\n' with
  | Some i ->
    Buffer.clear t.buf ;
    Buffer.add_string t.buf
      (String.sub contents (i + 1) (String.length contents - i - 1)) ;
    Some (String.sub contents 0 i)
  | None -> (
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> None
    | n ->
      Buffer.add_subbytes t.buf t.chunk 0 n ;
      read_line t)

let call t request =
  match
    write_all t.fd (Json.to_string (Protocol.request_to_json request) ^ "\n") ;
    read_line t
  with
  | Some line -> (
    match Json.of_string line with
    | Ok j -> Protocol.response_result j
    | Error msg -> Error ("transport", "unparseable response: " ^ msg))
  | None -> Error ("transport", "connection closed by server")
  | exception Unix.Unix_error (e, _, _) ->
    Error ("transport", Unix.error_message e)

let predictions = function
  | Ok j -> (
    match Option.bind (Json.member "predictions" j) Json.float_list with
    | Some ps -> Ok (Array.of_list ps)
    | None -> Error ("bad_response", "response missing predictions"))
  | Error _ as e -> e

let score_rows t ~model ?deadline_ms rows =
  predictions
    (call t (Protocol.Score { model; target = Protocol.Rows rows; deadline_ms }))

let score_ids t ~model ~dataset ?deadline_ms ids =
  predictions
    (call t
       (Protocol.Score
          { model; target = Protocol.Dataset { dataset; ids }; deadline_ms }))

let with_client ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
