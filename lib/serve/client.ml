type t = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let connect ~socket =
  let fd = Endpoint.connect (Endpoint.of_string socket) in
  { fd; buf = Buffer.create 512; chunk = Bytes.create 4096 }

(* Bound every read and write on the connection so a saturated or
   wedged peer surfaces as a transport error instead of blocking the
   caller forever — health probes depend on this. *)
let set_timeouts t dt =
  try
    Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO dt ;
    Unix.setsockopt_float t.fd Unix.SO_SNDTIMEO dt
  with Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* All byte movement goes through the Endpoint wrappers so the
   endpoint.* transport faults hit the client side too; an injected
   fault surfaces as a "transport" error via the catch in [call]. *)
let write_all fd s = Endpoint.write_all fd s

let rec read_line t =
  let contents = Buffer.contents t.buf in
  match String.index_opt contents '\n' with
  | Some i ->
    Buffer.clear t.buf ;
    Buffer.add_string t.buf
      (String.sub contents (i + 1) (String.length contents - i - 1)) ;
    Some (String.sub contents 0 i)
  | None -> (
    match Endpoint.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> None
    | n ->
      Buffer.add_subbytes t.buf t.chunk 0 n ;
      read_line t)

let call t request =
  match
    Fault.point "client.write" ;
    write_all t.fd (Json.to_string (Protocol.request_to_json request) ^ "\n") ;
    Fault.point "client.read" ;
    read_line t
  with
  | Some line -> (
    match Json.of_string line with
    | Ok j -> Protocol.response_result j
    | Error msg -> Error ("transport", "unparseable response: " ^ msg))
  | None -> Error ("transport", "connection closed by server")
  | exception Unix.Unix_error (e, _, _) ->
    Error ("transport", Unix.error_message e)
  | exception Fault.Injected p -> Error ("transport", "injected fault at " ^ p)

let predictions = function
  | Ok j -> (
    match Option.bind (Json.member "predictions" j) Json.float_list with
    | Some ps -> Ok (Array.of_list ps)
    | None -> Error ("bad_response", "response missing predictions"))
  | Error _ as e -> e

let score_rows t ~model ?deadline_ms rows =
  predictions
    (call t (Protocol.Score { model; target = Protocol.Rows rows; deadline_ms }))

let score_ids t ~model ~dataset ?deadline_ms ids =
  predictions
    (call t
       (Protocol.Score
          { model; target = Protocol.Dataset { dataset; ids }; deadline_ms }))

let score_where t ~model ~dataset ?deadline_ms where =
  predictions
    (call t
       (Protocol.Score
          { model;
            target = Protocol.Dataset_where { dataset; where };
            deadline_ms
          }))

let with_client ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ---- retrying calls ---- *)

type retry = {
  attempts : int;
  base_backoff : float;
  max_backoff : float;
  jitter : float;
  budget : float;
  retry_codes : string list;
}

let default_retry =
  { attempts = 5;
    base_backoff = 0.01;
    max_backoff = 0.5;
    jitter = 0.5;
    budget = 5.0;
    retry_codes = [ "transport"; "overloaded"; "circuit_open"; "internal" ]
  }

(* One attempt on one fresh connection. *)
let attempt_once ~socket request =
  match with_client ~socket (fun t -> call t request) with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
    Error ("transport", Unix.error_message e)
  | exception Fault.Injected p -> Error ("transport", "injected fault at " ^ p)

let call_retry ?(policy = default_retry) ?metrics ?rng ~socket request =
  if policy.attempts < 1 then invalid_arg "Client.call_retry: attempts < 1" ;
  let rng = match rng with Some r -> r | None -> La.Rng.of_int 0x5eed in
  let t0 = Clock.wall () in
  (* The connection is kept alive across attempts: a server that
     answered (even with an error code) left the stream at a frame
     boundary, so the next attempt can reuse it. Only a transport
     failure — which may have desynchronized the stream (half a frame
     written) — forces a reconnect. *)
  let conn = ref None in
  let drop_conn () =
    match !conn with
    | Some c ->
      close c ;
      conn := None
    | None -> ()
  in
  let attempt () =
    let reused = !conn <> None in
    match
      let c =
        match !conn with
        | Some c ->
          (match metrics with
          | Some m -> Metrics.record_conn_reused m
          | None -> ()) ;
          c
        | None ->
          let c = connect ~socket in
          (match metrics with
          | Some m -> Metrics.record_conn_fresh m
          | None -> ()) ;
          conn := Some c ;
          c
      in
      call c request
    with
    | Error ("transport", _) as err ->
      drop_conn () ;
      (* a reused stream may have gone stale between attempts (server
         restart, idle timeout): retry immediately on a fresh
         connection before charging the policy an attempt *)
      if reused then begin
        (match metrics with Some m -> Metrics.record_conn_fresh m | None -> ()) ;
        attempt_once ~socket request
      end
      else err
    | r -> r
    | exception Unix.Unix_error (e, _, _) ->
      drop_conn () ;
      Error ("transport", Unix.error_message e)
    | exception Fault.Injected p ->
      drop_conn () ;
      Error ("transport", "injected fault at " ^ p)
  in
  let finish r =
    drop_conn () ;
    r
  in
  let rec go k =
    match attempt () with
    | Ok _ as ok -> finish ok
    | Error (code, _) as err ->
      let elapsed = Clock.wall () -. t0 in
      if
        k >= policy.attempts
        || (not (List.mem code policy.retry_codes))
        || elapsed >= policy.budget
      then finish err
      else begin
        (match metrics with Some m -> Metrics.record_retry m | None -> ()) ;
        let base =
          Float.min policy.max_backoff
            (policy.base_backoff *. (2.0 ** float_of_int (k - 1)))
        in
        let jittered =
          base
          *. (1.0 -. (policy.jitter /. 2.0) +. (policy.jitter *. La.Rng.float rng))
        in
        (* never sleep past the budget: the last attempt still runs *)
        Thread.delay (Float.max 0.0 (Float.min jittered (policy.budget -. elapsed))) ;
        go (k + 1)
      end
  in
  go 1

let score_rows_retry ?policy ?metrics ?rng ~socket ~model ?deadline_ms rows =
  predictions
    (call_retry ?policy ?metrics ?rng ~socket
       (Protocol.Score { model; target = Protocol.Rows rows; deadline_ms }))

let score_ids_retry ?policy ?metrics ?rng ~socket ~model ~dataset ?deadline_ms
    ids =
  predictions
    (call_retry ?policy ?metrics ?rng ~socket
       (Protocol.Score
          { model; target = Protocol.Dataset { dataset; ids }; deadline_ms }))

let score_where_retry ?policy ?metrics ?rng ~socket ~model ~dataset
    ?deadline_ms where =
  predictions
    (call_retry ?policy ?metrics ?rng ~socket
       (Protocol.Score
          { model;
            target = Protocol.Dataset_where { dataset; where };
            deadline_ms
          }))

let health ~socket = attempt_once ~socket Protocol.Health

let health_timeout ~timeout ~socket =
  match
    with_client ~socket (fun t ->
        if timeout > 0.0 then set_timeouts t timeout ;
        call t Protocol.Health)
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
    Error ("transport", Unix.error_message e)
  | exception Fault.Injected p -> Error ("transport", "injected fault at " ^ p)
