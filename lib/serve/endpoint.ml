(* One address type for Unix-domain and TCP transports. The parsing
   rule keeps every pre-cluster call site working unchanged: an
   unadorned path is a Unix socket, and "host:port" is TCP only when
   the port is all digits and the host cannot be a path. *)

type t = Unix_path of string | Tcp of string * int

let all_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let of_string s =
  let tcp_of host port_s =
    match (host, int_of_string_opt port_s) with
    | "", _ | _, None -> None
    | host, Some port when not (String.contains host '/') -> Some (Tcp (host, port))
    | _ -> None
  in
  let split_last_colon s =
    match String.rindex_opt s ':' with
    | None -> None
    | Some i ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  in
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Unix_path (String.sub s 5 (String.length s - 5))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then begin
    let rest = String.sub s 4 (String.length s - 4) in
    match split_last_colon rest with
    | Some (host, port_s) when all_digits port_s -> (
      match tcp_of host port_s with
      | Some e -> e
      | None -> invalid_arg ("Endpoint.of_string: bad tcp endpoint " ^ s))
    | _ -> invalid_arg ("Endpoint.of_string: bad tcp endpoint " ^ s)
  end
  else
    match split_last_colon s with
    | Some (host, port_s) when all_digits port_s -> (
      match tcp_of host port_s with
      | Some e -> e
      | None -> Unix_path s)
    | _ -> Unix_path s

let to_string = function
  | Unix_path p -> p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | addr -> Unix.ADDR_INET (addr, port)
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        invalid_arg ("Endpoint.sockaddr: host resolves to nothing: " ^ host)
      | { Unix.h_addr_list; _ } -> Unix.ADDR_INET (h_addr_list.(0), port)
      | exception Not_found ->
        invalid_arg ("Endpoint.sockaddr: unknown host " ^ host)))

let domain = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 64) e =
  (match e with
  | Unix_path p -> if Sys.file_exists p then Sys.remove p
  | Tcp _ -> ()) ;
  let fd = Unix.socket ~cloexec:true (domain e) SOCK_STREAM 0 in
  (try
     (match e with
     | Tcp _ -> Unix.setsockopt fd SO_REUSEADDR true
     | Unix_path _ -> ()) ;
     Unix.bind fd (sockaddr e) ;
     Unix.listen fd backlog
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ()) ;
     raise exn) ;
  fd

let connect e =
  let fd = Unix.socket ~cloexec:true (domain e) SOCK_STREAM 0 in
  (try
     Unix.connect fd (sockaddr e) ;
     match e with
     | Tcp _ -> Unix.setsockopt fd TCP_NODELAY true
     | Unix_path _ -> ()
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ()) ;
     raise exn) ;
  fd

let bound_endpoint e fd =
  match e with
  | Unix_path _ -> e
  | Tcp (host, _) -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | _ -> e)

let cleanup = function
  | Unix_path p -> (
    if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ()
