(* One address type for Unix-domain and TCP transports. The parsing
   rule keeps every pre-cluster call site working unchanged: an
   unadorned path is a Unix socket, and "host:port" is TCP only when
   the port is all digits and the host cannot be a path. IPv6 literals
   use the bracket form, "[::1]:8080".

   This module is also the transport-level chaos seam: every accept,
   read, and write in the serving stack goes through {!accept},
   {!read}, and {!write_all} below, which carry the endpoint.* fault
   points — so partitions, stalled links, and torn frames are
   injectable at the byte level, not just at logical step points. *)

type t = Unix_path of string | Tcp of string * int

let all_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let port_of s =
  if not (all_digits s) then None
  else
    match int_of_string_opt s with
    | Some p when p >= 0 && p <= 65535 -> Some p
    | _ -> None

(* "[v6addr]:port" → Some (v6addr, port_string). *)
let split_bracketed s =
  if String.length s < 4 || s.[0] <> '[' then None
  else
    match String.index_opt s ']' with
    | Some i
      when i > 1
           && i + 1 < String.length s
           && s.[i + 1] = ':'
           && i + 2 < String.length s ->
      Some (String.sub s 1 (i - 1), String.sub s (i + 2) (String.length s - i - 2))
    | _ -> None

let split_last_colon s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let of_string_result s =
  let bad reason = Error (Printf.sprintf "bad endpoint %S: %s" s reason) in
  let tcp_strict rest =
    (* explicit tcp: form — reject instead of falling back to a path *)
    match split_bracketed rest with
    | Some (host, port_s) -> (
      match port_of port_s with
      | Some port -> Ok (Tcp (host, port))
      | None -> bad "port must be 0..65535")
    | None -> (
      match split_last_colon rest with
      | None -> bad "tcp endpoint wants HOST:PORT"
      | Some ("", _) -> bad "empty host"
      | Some (_, "") -> bad "empty port"
      | Some (host, port_s) -> (
        match port_of port_s with
        | None -> bad "port must be 0..65535"
        | Some _ when String.contains host '/' -> bad "host may not contain '/'"
        | Some port -> Ok (Tcp (host, port))))
  in
  if s = "" then bad "empty endpoint"
  else if String.length s >= 5 && String.sub s 0 5 = "unix:" then begin
    match String.sub s 5 (String.length s - 5) with
    | "" -> bad "empty socket path"
    | path -> Ok (Unix_path path)
  end
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    tcp_strict (String.sub s 4 (String.length s - 4))
  else
    (* bare form: TCP when it can only be an address, a path otherwise *)
    match split_bracketed s with
    | Some (host, port_s) -> (
      match port_of port_s with
      | Some port -> Ok (Tcp (host, port))
      | None -> bad "port must be 0..65535")
    | None -> (
      match split_last_colon s with
      | Some (host, port_s) when all_digits port_s -> (
        match (host, port_of port_s) with
        | "", _ -> bad "empty host"
        | host, Some port when not (String.contains host '/') ->
          Ok (Tcp (host, port))
        | _ -> Ok (Unix_path s))
      | _ -> Ok (Unix_path s))

let of_string s =
  match of_string_result s with
  | Ok e -> e
  | Error msg -> invalid_arg ("Endpoint.of_string: " ^ msg)

let to_string = function
  | Unix_path p -> p
  | Tcp (host, port) ->
    if String.contains host ':' then Printf.sprintf "[%s]:%d" host port
    else Printf.sprintf "%s:%d" host port

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) -> (
    match Unix.inet_addr_of_string host with
    | addr -> Unix.ADDR_INET (addr, port)
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
        invalid_arg ("Endpoint.sockaddr: host resolves to nothing: " ^ host)
      | { Unix.h_addr_list; _ } -> Unix.ADDR_INET (h_addr_list.(0), port)
      | exception Not_found ->
        invalid_arg ("Endpoint.sockaddr: unknown host " ^ host)))

(* Derived from the resolved address so IPv6 literals get PF_INET6. *)
let domain e = Unix.domain_of_sockaddr (sockaddr e)

let listen ?(backlog = 64) e =
  (match e with
  | Unix_path p -> if Sys.file_exists p then Sys.remove p
  | Tcp _ -> ()) ;
  let fd = Unix.socket ~cloexec:true (domain e) SOCK_STREAM 0 in
  (try
     (match e with
     | Tcp _ -> Unix.setsockopt fd SO_REUSEADDR true
     | Unix_path _ -> ()) ;
     Unix.bind fd (sockaddr e) ;
     Unix.listen fd backlog
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ()) ;
     raise exn) ;
  fd

let connect e =
  let fd = Unix.socket ~cloexec:true (domain e) SOCK_STREAM 0 in
  (try
     Unix.connect fd (sockaddr e) ;
     match e with
     | Tcp _ -> Unix.setsockopt fd TCP_NODELAY true
     | Unix_path _ -> ()
   with exn ->
     (try Unix.close fd with Unix.Unix_error _ -> ()) ;
     raise exn) ;
  fd

let bound_endpoint e fd =
  match e with
  | Unix_path _ -> e
  | Tcp (host, _) -> (
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> Tcp (host, port)
    | _ -> e)

let cleanup = function
  | Unix_path p -> (
    if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
  | Tcp _ -> ()

(* ---- fault-pointed transport I/O ---- *)

let accept fd =
  Fault.point "endpoint.accept" ;
  Unix.accept ~cloexec:true fd

let read fd buf off len =
  Fault.point "endpoint.read" ;
  Unix.read fd buf off len

(* A torn write is the nastiest TCP failure mode for a framed protocol:
   part of the frame reaches the peer, then the connection dies. The
   fault writes a prefix of the payload and raises, so the peer's
   buffered reader holds half a line that must be discarded at EOF —
   never parsed, never surfaced. *)
let write_all fd s =
  Fault.point "endpoint.stall" ;
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let torn =
    match Fault.point "endpoint.write.torn" with
    | () -> None
    | exception Fault.Injected _ -> Some (len / 2)
  in
  let limit = match torn with Some l -> l | None -> len in
  let off = ref 0 in
  while !off < limit do
    off := !off + Unix.write fd bytes !off (limit - !off)
  done ;
  match torn with
  | Some _ -> raise (Fault.Injected "endpoint.write.torn")
  | None -> ()
