(* Versioned on-disk model registry over Io's framed-payload files.
   Everything that matters for crash safety is inherited from Io:
   artifact.bin and manifest.json are both tmp+rename atomic, and the
   manifest is written second, making it the version's commit point. *)

open Morpheus

type manifest = {
  name : string;
  version : int;
  kind : string;
  feature_dim : int;
  schema_hash : string option;
  created : float;
  meta : (string * string) list;
}

type entry = { id : string; manifest : manifest }

let artifact_kind = "model-artifact"
let artifact_file = "artifact.bin"
let manifest_file = "manifest.json"

let id_of ~name ~version = Printf.sprintf "%s@v%d" name version

(* Leading '_' is reserved for registry-internal directories (the
   recovery sweep's quarantine). *)
let valid_name name =
  name <> ""
  && name.[0] <> '_'
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
         | _ -> false)
       name

(* Column-structure digest: entity width + per-part attribute widths.
   Row counts are deliberately excluded — a model trained on one
   extract must match any same-schema dataset. *)
let schema_hash t =
  let body = Normalized.body t in
  let buf = Buffer.create 64 in
  (match body.Normalized.ent with
  | Some s -> Buffer.add_string buf (Printf.sprintf "ent:%d" (Sparse.Mat.cols s))
  | None -> Buffer.add_string buf "ent:none") ;
  List.iter
    (fun (p : Normalized.part) ->
      Buffer.add_string buf
        (Printf.sprintf "|part:%d" (Sparse.Mat.cols p.Normalized.mat)))
    body.Normalized.parts ;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---- manifest (de)serialization ---- *)

let manifest_to_json m =
  Json.Obj
    [ ("name", Json.Str m.name);
      ("version", Json.Num (float_of_int m.version));
      ("kind", Json.Str m.kind);
      ("feature_dim", Json.Num (float_of_int m.feature_dim));
      ( "schema_hash",
        match m.schema_hash with Some h -> Json.Str h | None -> Json.Null );
      ("created", Json.Num m.created);
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.meta))
    ]

let manifest_of_json j =
  let open Json in
  let str k = Option.bind (member k j) to_str in
  let int k = Option.bind (member k j) to_int in
  match (str "name", int "version", str "kind", int "feature_dim") with
  | Some name, Some version, Some kind, Some feature_dim ->
    let schema_hash =
      match member "schema_hash" j with Some (Str h) -> Some h | _ -> None
    in
    let created =
      match Option.bind (member "created" j) to_float with
      | Some c -> c
      | None -> 0.0
    in
    let meta =
      match member "meta" j with
      | Some (Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (to_str v))
          fields
      | _ -> []
    in
    Ok { name; version; kind; feature_dim; schema_hash; created; meta }
  | _ -> Error "manifest missing name/version/kind/feature_dim"

let read_manifest path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> (
    match Json.of_string (String.trim contents) with
    | Ok j -> manifest_of_json j
    | Error e -> Error (path ^ ": " ^ e))
  | exception Sys_error e -> Error e

(* ---- directory scanning ---- *)

let versions_of ~dir name =
  let model_dir = Filename.concat dir name in
  if not (Sys.file_exists model_dir && Sys.is_directory model_dir) then []
  else
    Sys.readdir model_dir |> Array.to_list
    |> List.filter_map (fun v ->
           if String.length v > 1 && v.[0] = 'v' then
             match int_of_string_opt (String.sub v 1 (String.length v - 1)) with
             | Some n
               when Sys.file_exists
                      (Filename.concat (Filename.concat model_dir v)
                         manifest_file) ->
               Some n
             | _ -> None
           else None)
    |> List.sort compare

let version_dir ~dir ~name ~version =
  Filename.concat (Filename.concat dir name) (Printf.sprintf "v%d" version)

let entry_of ~dir ~name ~version =
  let vd = version_dir ~dir ~name ~version in
  match read_manifest (Filename.concat vd manifest_file) with
  | Ok manifest -> Some { id = id_of ~name ~version; manifest }
  | Error _ -> None

let list ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter (fun name -> name <> "" && name.[0] <> '_')
    |> List.concat_map (fun name ->
           versions_of ~dir name
           |> List.filter_map (fun version -> entry_of ~dir ~name ~version))

(* ---- save ---- *)

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let save ~dir ~name ?schema_hash ?(meta = []) artifact =
  if not (valid_name name) then
    invalid_arg
      ("Registry.save: invalid model name " ^ name
     ^ " (use letters, digits, '_', '-', '.'; no leading '_')") ;
  Fault.point "registry.save" ;
  ensure_dir dir ;
  ensure_dir (Filename.concat dir name) ;
  (* next version: committed or not, any existing vN directory is
     skipped so a crashed save never gets overwritten *)
  let model_dir = Filename.concat dir name in
  let taken =
    Sys.readdir model_dir |> Array.to_list
    |> List.filter_map (fun v ->
           if String.length v > 1 && v.[0] = 'v' then
             int_of_string_opt (String.sub v 1 (String.length v - 1))
           else None)
  in
  let version = 1 + List.fold_left max 0 taken in
  let vd = version_dir ~dir ~name ~version in
  ensure_dir vd ;
  Io.write_payload ~kind:artifact_kind
    (Filename.concat vd artifact_file)
    (Artifact.to_payload artifact) ;
  let manifest =
    { name;
      version;
      kind = Artifact.kind artifact;
      feature_dim = Artifact.feature_dim artifact;
      schema_hash;
      created = Clock.wall ();
      meta
    }
  in
  (* the commit point *)
  Io.write_text_atomic
    (Filename.concat vd manifest_file)
    (Json.to_string (manifest_to_json manifest) ^ "\n") ;
  { id = id_of ~name ~version; manifest }

(* ---- resolve / load ---- *)

let parse_ref r =
  match String.index_opt r '@' with
  | None -> Ok (r, None)
  | Some i ->
    let name = String.sub r 0 i in
    let v = String.sub r (i + 1) (String.length r - i - 1) in
    if String.length v > 1 && v.[0] = 'v' then
      match int_of_string_opt (String.sub v 1 (String.length v - 1)) with
      | Some n -> Ok (name, Some n)
      | None -> Error (Printf.sprintf "malformed version in %S" r)
    else Error (Printf.sprintf "malformed version in %S (want name@vN)" r)

let resolve ~dir r =
  match parse_ref r with
  | Error _ as e -> e
  | Ok (name, version) -> (
    let version =
      match version with
      | Some v -> Some v
      | None -> (
        match List.rev (versions_of ~dir name) with
        | latest :: _ -> Some latest
        | [] -> None)
    in
    match version with
    | None -> Error (Printf.sprintf "unknown model %S" r)
    | Some version -> (
      match entry_of ~dir ~name ~version with
      | Some e -> Ok e
      | None -> Error (Printf.sprintf "unknown model %S" r)))

let load ~dir r =
  match resolve ~dir r with
  | Error _ as e -> e
  | Ok { id; manifest } -> (
    let vd = version_dir ~dir ~name:manifest.name ~version:manifest.version in
    match
      Fault.point "registry.load" ;
      Io.read_payload ~kind:artifact_kind (Filename.concat vd artifact_file)
    with
    | exception Io.Corrupt msg -> Error msg
    | exception Sys_error msg -> Error msg
    | exception Fault.Injected p -> Error ("injected fault at " ^ p)
    | exception La.Validate.Numeric_error i -> Error (La.Validate.message i)
    | payload -> (
      match Artifact.of_payload payload with
      | Error msg -> Error (Printf.sprintf "%s: %s" id msg)
      | Ok artifact ->
        if Artifact.kind artifact <> manifest.kind then
          Error
            (Printf.sprintf "%s: manifest kind %S but artifact is %S" id
               manifest.kind (Artifact.kind artifact))
        else Ok (artifact, manifest)))

(* ---- startup recovery sweep ---- *)

let quarantine_dirname = "_quarantine"

let is_version_name v =
  String.length v > 1
  && v.[0] = 'v'
  && int_of_string_opt (String.sub v 1 (String.length v - 1)) <> None

let has_suffix ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* Crash litter from the tmp+rename protocol: *.tmp files (a write that
   never reached its rename) and vN directories without a manifest (a
   save that never reached its commit point). [save] already refuses to
   reuse an uncommitted vN, and [list]/[resolve] never surface one, but
   litter still accumulates and an uncommitted vN silently pins a
   version number forever. The sweep moves both kinds into
   <dir>/_quarantine/ — renamed, never deleted, so an operator can
   inspect what the crash left behind. *)
let recover ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else begin
    let quarantined = ref [] in
    let qdir = Filename.concat dir quarantine_dirname in
    let unique_target leaf =
      let base = Filename.concat qdir leaf in
      if not (Sys.file_exists base) then base
      else
        let rec go k =
          let p = Printf.sprintf "%s.%d" base k in
          if Sys.file_exists p then go (k + 1) else p
        in
        go 1
    in
    let quarantine path leaf =
      ensure_dir qdir ;
      let target = unique_target leaf in
      (try
         Sys.rename path target ;
         quarantined := (path, target) :: !quarantined
       with Sys_error _ -> ())
      (* an unmovable entry stays; the sweep is best-effort *)
    in
    let sweep_version_dir ~name vd v =
      (* stray tmp files inside a committed version *)
      Array.iter
        (fun f ->
          if has_suffix ~suffix:".tmp" f then
            quarantine (Filename.concat vd f)
              (Printf.sprintf "%s-%s-%s" name v f))
        (try Sys.readdir vd with Sys_error _ -> [||])
    in
    let sweep_model name =
      let model_dir = Filename.concat dir name in
      if Sys.is_directory model_dir then
        Array.iter
          (fun v ->
            let path = Filename.concat model_dir v in
            if has_suffix ~suffix:".tmp" v then
              quarantine path (Printf.sprintf "%s-%s" name v)
            else if is_version_name v && Sys.is_directory path then
              if Sys.file_exists (Filename.concat path manifest_file) then
                sweep_version_dir ~name path v
              else quarantine path (Printf.sprintf "%s-%s" name v))
          (try Sys.readdir model_dir with Sys_error _ -> [||])
      else if has_suffix ~suffix:".tmp" name then quarantine model_dir name
    in
    Array.iter
      (fun name -> if name <> "" && name.[0] <> '_' then sweep_model name)
      (try Sys.readdir dir with Sys_error _ -> [||]) ;
    List.rev !quarantined
  end

(* ---- delete ---- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path) ;
    Sys.rmdir path
  end
  else Sys.remove path

let delete ~dir r =
  match parse_ref r with
  | Error _ as e -> e
  | Ok (name, None) ->
    let model_dir = Filename.concat dir name in
    if Sys.file_exists model_dir then Ok (rm_rf model_dir)
    else Error (Printf.sprintf "unknown model %S" r)
  | Ok (name, Some version) ->
    let vd = version_dir ~dir ~name ~version in
    if Sys.file_exists vd then Ok (rm_rf vd)
    else Error (Printf.sprintf "unknown model %S" r)
