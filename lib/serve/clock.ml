(* The serve stack's one sanctioned wall-clock source. Every other
   module takes time as [Clock.wall] (or an injectable [~now] that
   defaults to it), so the lint (rule E204) can guarantee no stray
   [Unix.gettimeofday] creeps into code that tests would then be
   unable to fake. *)

let wall () = Unix.gettimeofday ()
