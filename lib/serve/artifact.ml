(* Trained-model artifacts. Scoring reuses the ML functors'
   instantiations from {!Ml_algs.Algorithms}: the factorized path for
   normalized datasets, the regular-matrix path for raw dense rows —
   the same code the trainers ran, so serving semantics can't drift
   from training semantics. *)

open La
open Morpheus
module F = Ml_algs.Algorithms.Factorized
module M = Ml_algs.Algorithms.Materialized

type t =
  | Logreg of Dense.t
  | Linreg of Dense.t
  | Glm of Ml_algs.Glm.family * Dense.t
  | Kmeans of Dense.t
  | Naive_bayes of Ml_algs.Naive_bayes.model

let kind = function
  | Logreg _ -> "logreg"
  | Linreg _ -> "linreg"
  | Glm _ -> "glm"
  | Kmeans _ -> "kmeans"
  | Naive_bayes _ -> "naive_bayes"

let feature_dim = function
  | Logreg w | Linreg w | Glm (_, w) -> Dense.rows w
  | Kmeans c -> Dense.rows c
  | Naive_bayes m -> Ml_algs.Naive_bayes.feature_dim m

let describe t =
  match t with
  | Logreg w -> Printf.sprintf "logreg (d=%d)" (Dense.rows w)
  | Linreg w -> Printf.sprintf "linreg (d=%d)" (Dense.rows w)
  | Glm (fam, w) ->
    Printf.sprintf "glm %s (d=%d)"
      (Ml_algs.Glm.family_to_string fam)
      (Dense.rows w)
  | Kmeans c -> Printf.sprintf "kmeans (d=%d, k=%d)" (Dense.rows c) (Dense.cols c)
  | Naive_bayes m ->
    Printf.sprintf "naive_bayes (d=%d, classes=%d)"
      (Ml_algs.Naive_bayes.feature_dim m)
      (List.length m.Ml_algs.Naive_bayes.classes)

let check_dim t d =
  let want = feature_dim t in
  if d <> want then
    invalid_arg
      (Printf.sprintf "Artifact.score: %s expects %d features, got %d" (kind t)
         want d)

let sigmoid s = 1.0 /. (1.0 +. Stdlib.exp (-.s))

let col_array m = Dense.col_to_array m

(* The weight models differ only in the link applied to T·w; keeping
   one multiply + an element-wise map preserves per-row bitwise
   identity between single-row and batched scoring. *)
let score_normalized t tn =
  check_dim t (Normalized.cols tn) ;
  match t with
  | Logreg w -> Array.map sigmoid (col_array (Rewrite.lmm tn w))
  | Linreg w -> col_array (Rewrite.lmm tn w)
  | Glm (family, w) ->
    col_array (F.Glm.predict_mean tn { F.Glm.family; w })
  | Kmeans c -> Array.map float_of_int (F.Kmeans.assign tn c)
  | Naive_bayes m -> Ml_algs.Naive_bayes.predict m tn

let score_dense t x =
  check_dim t (Dense.cols x) ;
  match t with
  | Logreg w ->
    Array.map sigmoid (col_array (Blas.gemm x w))
  | Linreg w -> col_array (Blas.gemm x w)
  | Glm (family, w) ->
    col_array
      (M.Glm.predict_mean (Regular_matrix.of_dense x) { M.Glm.family; w })
  | Kmeans c ->
    Array.map float_of_int (M.Kmeans.assign (Regular_matrix.of_dense x) c)
  | Naive_bayes m -> Ml_algs.Naive_bayes.predict_dense m x

(* ---- marshal-safe persisted form ---- *)

type dense_payload = { pr : int; pc : int; pd : float array }

type payload =
  | PL_logreg of dense_payload
  | PL_linreg of dense_payload
  | PL_glm of string * dense_payload
  | PL_kmeans of dense_payload
  | PL_nb of int * (float * float * float array * float array) list

let dense_to_payload m = { pr = Dense.rows m; pc = Dense.cols m; pd = Dense.data m }

let dense_of_payload p =
  if p.pr <= 0 || p.pc <= 0 || Array.length p.pd <> p.pr * p.pc then
    Error
      (Printf.sprintf "dense payload: %d values for a %dx%d matrix"
         (Array.length p.pd) p.pr p.pc)
  else
    match Validate.scan p.pd with
    | Some i ->
      Error
        (Printf.sprintf "dense payload: non-finite value %h at index %d"
           p.pd.(i) i)
    | None -> Ok (Dense.of_array ~rows:p.pr ~cols:p.pc (Array.copy p.pd))

let to_payload = function
  | Logreg w -> PL_logreg (dense_to_payload w)
  | Linreg w -> PL_linreg (dense_to_payload w)
  | Glm (fam, w) -> PL_glm (Ml_algs.Glm.family_to_string fam, dense_to_payload w)
  | Kmeans c -> PL_kmeans (dense_to_payload c)
  | Naive_bayes m ->
    PL_nb
      ( Ml_algs.Naive_bayes.feature_dim m,
        List.map
          (fun (c : Ml_algs.Naive_bayes.class_stats) ->
            (c.label, c.prior, c.mean, c.variance))
          m.Ml_algs.Naive_bayes.classes )

let ( let* ) = Result.bind

let of_payload = function
  | PL_logreg p ->
    let* w = dense_of_payload p in
    if Dense.cols w <> 1 then Error "logreg weights must be a column"
    else Ok (Logreg w)
  | PL_linreg p ->
    let* w = dense_of_payload p in
    if Dense.cols w <> 1 then Error "linreg weights must be a column"
    else Ok (Linreg w)
  | PL_glm (fam, p) -> (
    let* w = dense_of_payload p in
    if Dense.cols w <> 1 then Error "glm weights must be a column"
    else
      match Ml_algs.Glm.family_of_string fam with
      | Some family -> Ok (Glm (family, w))
      | None -> Error (Printf.sprintf "unknown glm family %S" fam))
  | PL_kmeans p ->
    let* c = dense_of_payload p in
    Ok (Kmeans c)
  | PL_nb (d, classes) -> (
    match
      Ml_algs.Naive_bayes.make ~d
        (List.map
           (fun (label, prior, mean, variance) ->
             { Ml_algs.Naive_bayes.label;
               prior;
               mean = Array.copy mean;
               variance = Array.copy variance
             })
           classes)
    with
    | m -> Ok (Naive_bayes m)
    | exception Invalid_argument msg -> Error msg)
