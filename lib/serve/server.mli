(** The scoring server: a line-delimited-JSON protocol over a Unix
    domain socket in front of the model registry and the micro-batching
    scoring engine.

    Threading: one accept thread, [handlers] connection-handler
    threads, and one batching thread. Handler threads only parse,
    validate, and block in {!Batcher.submit}; every LA kernel runs on
    the batching thread, so the {!La.Pool} single-caller contract
    holds and the kernels may still parallelize internally over
    domains. Overload shedding and per-request deadlines are enforced
    by the batcher; a shed or expired request gets an error response,
    never silence. *)

type config = {
  registry : string;  (** registry directory ({!Registry}) *)
  socket : string;  (** Unix domain socket path (created; replaced) *)
  max_batch : int;  (** micro-batch close threshold (requests) *)
  max_wait : float;  (** micro-batch max linger, seconds *)
  queue_bound : int;  (** pending requests before shedding *)
  handlers : int;  (** connection-handler threads *)
  cache_capacity : int;  (** dataset LRU entries *)
  default_deadline_ms : float option;
      (** applied to requests that carry no deadline *)
}

val default_config : registry:string -> socket:string -> config
(** max_batch 64, max_wait 2ms, queue_bound 1024, handlers 4,
    cache_capacity 4, no default deadline. *)

type t

val start : config -> t
(** Bind the socket and start the threads. Raises [Unix.Unix_error] if
    the socket cannot be bound, [Invalid_argument] on nonsensical
    config values. *)

val request_stop : t -> unit
(** Begin a graceful shutdown (idempotent, callable from any thread —
    including a signal handler or a handler thread serving the
    [shutdown] op): stop accepting, let in-flight requests finish. *)

val wait : t -> unit
(** Block until a stop has been requested. *)

val stop : t -> unit
(** {!request_stop} + join all threads + remove the socket file. *)

val stats : t -> Json.t
(** The [stats] payload: metrics snapshot + server section (uptime,
    loaded models, dataset cache, queue). *)

val metrics : t -> Metrics.t

val run : config -> unit
(** [start], install SIGINT/SIGTERM handlers that request a stop, block
    until shutdown, then dump the metrics summary to stdout. *)
