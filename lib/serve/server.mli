(** The scoring server: a line-delimited-JSON protocol over a Unix
    domain socket or TCP ({!Endpoint}) in front of the model registry
    and the micro-batching scoring engine.

    Threading: one accept thread, [handlers] connection-handler
    threads, one supervisor thread, and one batching thread. Handler
    threads only parse, validate, and block in {!Batcher.submit};
    every LA kernel runs on the batching thread, so the {!La.Pool}
    single-caller contract holds and the kernels may still parallelize
    internally over domains. Overload shedding and per-request
    deadlines are enforced by the batcher; a shed or expired request
    gets an error response, never silence.

    Self-healing: the supervisor joins and respawns any handler thread
    that crashes (counted in {!Metrics.restarts}); each server-side
    dataset gets a {!Breaker} so repeated load failures fail fast
    instead of hammering the filesystem; {!start} runs
    {!Registry.recover} to quarantine crash litter; and the [health]
    protocol op reports ok/degraded with open-circuit and restart
    counts. See docs/ROBUSTNESS.md. *)

type config = {
  registry : string;  (** registry directory ({!Registry}) *)
  socket : string;
      (** endpoint string ({!Endpoint.of_string}): a Unix domain socket
          path (created; replaced) or ["host:port"] to listen on TCP
          (["host:0"] picks an ephemeral port — read it back with
          {!endpoint}) *)
  max_batch : int;  (** micro-batch close threshold (requests) *)
  max_wait : float;  (** micro-batch max linger, seconds *)
  queue_bound : int;  (** pending requests before shedding *)
  handlers : int;  (** connection-handler threads *)
  cache_capacity : int;  (** dataset LRU entries *)
  default_deadline_ms : float option;
      (** applied to requests that carry no deadline *)
  breaker_threshold : int;
      (** consecutive dataset-load failures before that dataset's
          circuit opens *)
  breaker_cooldown : float;
      (** seconds an open circuit refuses fast before probing again *)
  drain_on_term : bool;
      (** when true, {!run}'s SIGTERM handler starts a graceful drain
          ([health] answers ["draining"], the queue finishes, then the
          server stops on its own) instead of stopping immediately *)
  limiter_target_ms : float option;
      (** latency target for the AIMD concurrency {!Limiter} over
          in-flight score requests; [None] disables admission
          limiting *)
}

val default_config : registry:string -> socket:string -> config
(** max_batch 64, max_wait 2ms, queue_bound 1024, handlers 4,
    cache_capacity 4, no default deadline, breaker threshold 5 /
    cooldown 1s, no drain-on-term, no concurrency limiter. *)

type t

val start : config -> t
(** Bind the socket and start the threads. Raises [Unix.Unix_error] if
    the socket cannot be bound, [Invalid_argument] on nonsensical
    config values. *)

val request_stop : t -> unit
(** Begin a graceful shutdown (idempotent, callable from any thread —
    including a signal handler or a handler thread serving the
    [shutdown] op): stop accepting, let in-flight requests finish. *)

val request_drain : t -> unit
(** Enter draining: [health] answers ["draining"] (so routers stop
    assigning new keys), queued and in-flight work still completes,
    and the server stops once it has been idle for a short grace
    window. Cancelled by {!cancel_drain} (or the [undrain] op) any
    time before the stop fires. *)

val cancel_drain : t -> bool
(** Leave draining; returns whether a drain was in progress. *)

val is_draining : t -> bool

val wait : t -> unit
(** Block until a stop has been requested. *)

val stop : t -> unit
(** {!request_stop} + join all threads + remove the socket file. *)

val stats : t -> Json.t
(** The [stats] payload: metrics snapshot + server section (uptime,
    loaded models, dataset cache, queue). *)

val metrics : t -> Metrics.t

val endpoint : t -> Endpoint.t
(** The endpoint actually bound — for [socket = "host:0"] this carries
    the ephemeral port the kernel assigned. *)

val run : config -> unit
(** [start], install SIGINT/SIGTERM handlers that request a stop, block
    until shutdown, then dump the metrics summary to stdout. *)
