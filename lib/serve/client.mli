(** Blocking client for the scoring server: one connection, one
    request/response at a time over the line-delimited JSON protocol.
    Used by [morpheus score], the smoke test, and the benchmark. *)

type t

val connect : socket:string -> t
(** Raises [Unix.Unix_error] if the socket cannot be reached. *)

val close : t -> unit

val call : t -> Protocol.request -> (Json.t, string * string) result
(** Send one request and block for its response. [Error (code, message)]
    covers both protocol-level errors and transport failures (which
    surface as code ["transport"]). *)

val score_rows :
  t ->
  model:string ->
  ?deadline_ms:float ->
  float array array ->
  (float array, string * string) result
(** Score raw dense feature rows. *)

val score_ids :
  t ->
  model:string ->
  dataset:string ->
  ?deadline_ms:float ->
  int array ->
  (float array, string * string) result
(** Score rows of a server-side normalized dataset by row id. *)

val with_client : socket:string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)
