(** Blocking client for the scoring server: one connection, one
    request/response at a time over the line-delimited JSON protocol.
    Used by [morpheus score], the smoke test, and the benchmark. *)

type t

val connect : socket:string -> t
(** [socket] is an endpoint string ({!Endpoint.of_string}): a Unix
    socket path or ["host:port"] for TCP. Raises [Unix.Unix_error] if
    the endpoint cannot be reached. *)

val close : t -> unit

val call : t -> Protocol.request -> (Json.t, string * string) result
(** Send one request and block for its response. [Error (code, message)]
    covers both protocol-level errors and transport failures (which
    surface as code ["transport"]). *)

val score_rows :
  t ->
  model:string ->
  ?deadline_ms:float ->
  float array array ->
  (float array, string * string) result
(** Score raw dense feature rows. *)

val score_ids :
  t ->
  model:string ->
  dataset:string ->
  ?deadline_ms:float ->
  int array ->
  (float array, string * string) result
(** Score rows of a server-side normalized dataset by row id. *)

val score_where :
  t ->
  model:string ->
  dataset:string ->
  ?deadline_ms:float ->
  Morpheus.Pred.t ->
  (float array, string * string) result
(** Score every dataset row satisfying the predicate (the [score_where]
    op): the server runs per-table masks + one factorized [select_rows]
    + one score for the whole segment. Predictions arrive in ascending
    row-id order — identical to {!score_ids} with the matching ids. *)

val with_client : socket:string -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)

(** {1 Retrying calls}

    Score requests are idempotent (pure functions of model + rows/ids),
    so a retried request returns a bitwise-identical response — retries
    can never produce a wrong answer, only a late one. *)

type retry = {
  attempts : int;  (** total attempts, including the first *)
  base_backoff : float;  (** seconds before the first retry *)
  max_backoff : float;  (** cap on the doubled backoff *)
  jitter : float;
      (** backoff is scaled uniformly in [1 − j/2, 1 + j/2] to
          decorrelate concurrent retries *)
  budget : float;  (** absolute seconds: no sleep extends past this *)
  retry_codes : string list;  (** error codes worth another attempt *)
}

val default_retry : retry
(** 5 attempts, 10ms base doubling to a 0.5s cap, jitter 0.5, 5s
    budget; retries [transport], [overloaded], [circuit_open], and
    [internal]. Permanent errors ([unknown_model], [bad_request],
    [deadline_exceeded], schema mismatches) are never retried. *)

val call_retry :
  ?policy:retry ->
  ?metrics:Metrics.t ->
  ?rng:La.Rng.t ->
  socket:string ->
  Protocol.request ->
  (Json.t, string * string) result
(** One logical request with retries. The connection is kept alive
    across attempts — a server that answered with a retryable error
    left the stream at a frame boundary, so the next attempt reuses it
    ({!Metrics.record_conn_reused}); only a transport failure (which
    may have desynchronized the stream) forces a fresh connect
    ({!Metrics.record_conn_fresh}), and a reused stream that turns out
    stale gets one immediate fresh-connection retry before the policy
    is charged. [metrics] counts each retry ({!Metrics.record_retry});
    [rng] drives the jitter deterministically (defaults to a fixed
    seed). Returns the last error when the policy is exhausted. *)

val score_rows_retry :
  ?policy:retry ->
  ?metrics:Metrics.t ->
  ?rng:La.Rng.t ->
  socket:string ->
  model:string ->
  ?deadline_ms:float ->
  float array array ->
  (float array, string * string) result

val score_ids_retry :
  ?policy:retry ->
  ?metrics:Metrics.t ->
  ?rng:La.Rng.t ->
  socket:string ->
  model:string ->
  dataset:string ->
  ?deadline_ms:float ->
  int array ->
  (float array, string * string) result

val score_where_retry :
  ?policy:retry ->
  ?metrics:Metrics.t ->
  ?rng:La.Rng.t ->
  socket:string ->
  model:string ->
  dataset:string ->
  ?deadline_ms:float ->
  Morpheus.Pred.t ->
  (float array, string * string) result

val health : socket:string -> (Json.t, string * string) result
(** One [health] request on a fresh connection (no retries — a health
    probe wants the truth about right now). *)

val health_timeout :
  timeout:float -> socket:string -> (Json.t, string * string) result
(** {!health} with every read and write on the probe connection
    bounded by [timeout] seconds ([SO_RCVTIMEO]/[SO_SNDTIMEO]): a peer
    that accepts but never answers surfaces as a ["transport"] error
    instead of wedging the caller — what an active prober needs, since
    one unresponsive shard must not freeze membership for the rest of
    the fleet. *)
