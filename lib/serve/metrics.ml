(* Serving metrics. Latencies go into a geometric histogram: bucket i
   covers (base·r^(i-1), base·r^i] with base = 1µs and r = 2^(1/4), so
   113 buckets span 1µs..~100s and a quantile read off a bucket's upper
   edge overestimates by at most r − 1 ≈ 19%. Exact min/mean/max are
   kept separately. *)

type hist = {
  buckets : int array;  (* last bucket is the overflow *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let nbuckets = 114
let base = 1e-6
let log_r = 0.25 *. Stdlib.log 2.0

let hist () =
  { buckets = Array.make nbuckets 0;
    count = 0;
    sum = 0.0;
    min = Float.infinity;
    max = 0.0
  }

let bucket_of seconds =
  if seconds <= base then 0
  else
    let i = 1 + int_of_float (Float.ceil (Stdlib.log (seconds /. base) /. log_r)) in
    Stdlib.min i (nbuckets - 1)

let bucket_upper i = if i = 0 then base else base *. Stdlib.exp (log_r *. float_of_int i)

let hist_add h seconds =
  let seconds = Float.max 0.0 seconds in
  h.buckets.(bucket_of seconds) <- h.buckets.(bucket_of seconds) + 1 ;
  h.count <- h.count + 1 ;
  h.sum <- h.sum +. seconds ;
  if seconds < h.min then h.min <- seconds ;
  if seconds > h.max then h.max <- seconds

let hist_quantile h q =
  if h.count = 0 then 0.0
  else begin
    let target =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let acc = ref 0 and found = ref (nbuckets - 1) in
    (try
       for i = 0 to nbuckets - 1 do
         acc := !acc + h.buckets.(i) ;
         if !acc >= target then begin
           found := i ;
           raise Exit
         end
       done
     with Exit -> ()) ;
    (* clamp the edge estimate by the exact extrema *)
    Float.min h.max (Float.max h.min (bucket_upper !found))
  end

type t = {
  m : Analysis.Sync.t;
  ops : (string, int * hist) Hashtbl.t;  (* per-op count + latencies *)
  all : hist;  (* all successful requests *)
  errors : (string, int) Hashtbl.t;
  batch_dist : (int, int) Hashtbl.t;  (* requests-per-batch -> batches *)
  mutable batches : int;
  mutable batched_requests : int;
  mutable batched_rows : int;
  mutable max_batch_requests : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  (* robustness counters *)
  mutable retries : int;  (* client-side retry attempts *)
  mutable sheds : int;  (* requests shed at the queue bound *)
  mutable limited : int;  (* requests shed by the AIMD concurrency limiter *)
  mutable restarts : int;  (* crashed handler threads restarted *)
  mutable write_errors : int;  (* response writes to dead peers *)
  mutable conns_reused : int;  (* retry attempts on a kept-alive connection *)
  mutable conns_fresh : int;  (* retry attempts that opened a new connection *)
}

let create () =
  { m = Analysis.Sync.create ~name:"serve.metrics" ();
    ops = Hashtbl.create 8;
    all = hist ();
    errors = Hashtbl.create 8;
    batch_dist = Hashtbl.create 16;
    batches = 0;
    batched_requests = 0;
    batched_rows = 0;
    max_batch_requests = 0;
    cache_hits = 0;
    cache_misses = 0;
    retries = 0;
    sheds = 0;
    limited = 0;
    restarts = 0;
    write_errors = 0;
    conns_reused = 0;
    conns_fresh = 0
  }

let locked t f =
  Analysis.Sync.lock t.m ;
  Fun.protect ~finally:(fun () -> Analysis.Sync.unlock t.m) f

let record t ~op ~seconds =
  locked t (fun () ->
      let count, h =
        match Hashtbl.find_opt t.ops op with
        | Some ch -> ch
        | None -> (0, hist ())
      in
      hist_add h seconds ;
      Hashtbl.replace t.ops op (count + 1, h) ;
      hist_add t.all seconds)

let record_error t ~code =
  locked t (fun () ->
      Hashtbl.replace t.errors code
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.errors code)))

let record_batch t ~requests ~rows =
  locked t (fun () ->
      t.batches <- t.batches + 1 ;
      t.batched_requests <- t.batched_requests + requests ;
      t.batched_rows <- t.batched_rows + rows ;
      if requests > t.max_batch_requests then t.max_batch_requests <- requests ;
      Hashtbl.replace t.batch_dist requests
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.batch_dist requests)))

let record_cache t ~hit =
  locked t (fun () ->
      if hit then t.cache_hits <- t.cache_hits + 1
      else t.cache_misses <- t.cache_misses + 1)

let record_retry t = locked t (fun () -> t.retries <- t.retries + 1)
let record_shed t = locked t (fun () -> t.sheds <- t.sheds + 1)
let record_limited t = locked t (fun () -> t.limited <- t.limited + 1)
let record_restart t = locked t (fun () -> t.restarts <- t.restarts + 1)
let record_write_error t = locked t (fun () -> t.write_errors <- t.write_errors + 1)
let record_conn_reused t = locked t (fun () -> t.conns_reused <- t.conns_reused + 1)
let record_conn_fresh t = locked t (fun () -> t.conns_fresh <- t.conns_fresh + 1)
let conns_reused t = locked t (fun () -> t.conns_reused)
let conns_fresh t = locked t (fun () -> t.conns_fresh)
let retries t = locked t (fun () -> t.retries)
let sheds t = locked t (fun () -> t.sheds)
let limited t = locked t (fun () -> t.limited)
let restarts t = locked t (fun () -> t.restarts)
let write_errors t = locked t (fun () -> t.write_errors)

let requests t = locked t (fun () -> t.all.count)

let errors t =
  locked t (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) t.errors 0)

let quantile t q = locked t (fun () -> hist_quantile t.all q)

let latency_json h =
  Json.Obj
    [ ("count", Json.Num (float_of_int h.count));
      ( "mean_s",
        Json.Num (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count) );
      ("p50_s", Json.Num (hist_quantile h 0.50));
      ("p95_s", Json.Num (hist_quantile h 0.95));
      ("p99_s", Json.Num (hist_quantile h 0.99));
      ("max_s", Json.Num (if h.count = 0 then 0.0 else h.max))
    ]

let snapshot t =
  locked t (fun () ->
      let ops =
        Hashtbl.fold
          (fun op (count, h) acc ->
            ( op,
              Json.Obj
                [ ("count", Json.Num (float_of_int count));
                  ("latency", latency_json h)
                ] )
            :: acc)
          t.ops []
        |> List.sort compare
      in
      let errors =
        Hashtbl.fold
          (fun code n acc -> (code, Json.Num (float_of_int n)) :: acc)
          t.errors []
        |> List.sort compare
      in
      let dist =
        Hashtbl.fold
          (fun sz n acc -> (string_of_int sz, Json.Num (float_of_int n)) :: acc)
          t.batch_dist []
        |> List.sort (fun (a, _) (b, _) ->
               compare (int_of_string a) (int_of_string b))
      in
      let fdiv a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
      Json.Obj
        [ ("requests", Json.Num (float_of_int t.all.count));
          ("latency", latency_json t.all);
          ("ops", Json.Obj ops);
          ("errors", Json.Obj errors);
          ( "batches",
            Json.Obj
              [ ("count", Json.Num (float_of_int t.batches));
                ("mean_requests", Json.Num (fdiv t.batched_requests t.batches));
                ("mean_rows", Json.Num (fdiv t.batched_rows t.batches));
                ("max_requests", Json.Num (float_of_int t.max_batch_requests));
                ("dist", Json.Obj dist)
              ] );
          ( "dataset_cache",
            Json.Obj
              [ ("hits", Json.Num (float_of_int t.cache_hits));
                ("misses", Json.Num (float_of_int t.cache_misses));
                ( "hit_rate",
                  Json.Num (fdiv t.cache_hits (t.cache_hits + t.cache_misses))
                )
              ] );
          ( "robustness",
            Json.Obj
              [ ("retries", Json.Num (float_of_int t.retries));
                ("sheds", Json.Num (float_of_int t.sheds));
                ("limiter_sheds", Json.Num (float_of_int t.limited));
                ("handler_restarts", Json.Num (float_of_int t.restarts));
                ("write_errors", Json.Num (float_of_int t.write_errors));
                ("conns_reused", Json.Num (float_of_int t.conns_reused));
                ("conns_fresh", Json.Num (float_of_int t.conns_fresh))
              ] );
          (* concurrency-discipline counters: process-global (the pool
             and lockdep are), not per-server *)
          ( "concurrency",
            Json.Obj
              [ ( "nested_parallel_downgrades",
                  Json.Num (float_of_int (Analysis.Sync.nested_downgrades ()))
                );
                ( "lockdep",
                  Json.Str
                    (if Analysis.Sync.lockdep_enabled () then "on" else "off")
                );
                ( "lockdep_violations",
                  Json.Num
                    (float_of_int
                       (List.length (Analysis.Sync.lockdep_violations ()))) );
                ( "lockdep_warnings",
                  Json.Num
                    (float_of_int
                       (List.length (Analysis.Sync.lockdep_warnings ()))) )
              ] )
        ])

let summary t =
  let j = snapshot t in
  let buf = Buffer.create 256 in
  let num path dflt =
    match Option.bind (Json.member path j) Json.to_float with
    | Some x -> x
    | None -> dflt
  in
  let lat k =
    match
      Option.bind (Json.member "latency" j) (fun l ->
          Option.bind (Json.member k l) Json.to_float)
    with
    | Some x -> x
    | None -> 0.0
  in
  Buffer.add_string buf
    (Printf.sprintf "requests      : %.0f (errors: %d)\n" (num "requests" 0.0)
       (errors t)) ;
  Buffer.add_string buf
    (Printf.sprintf "latency       : p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n"
       (1e3 *. lat "p50_s") (1e3 *. lat "p95_s") (1e3 *. lat "p99_s")
       (1e3 *. lat "max_s")) ;
  (match Json.member "batches" j with
  | Some b ->
    let f k =
      match Option.bind (Json.member k b) Json.to_float with
      | Some x -> x
      | None -> 0.0
    in
    Buffer.add_string buf
      (Printf.sprintf
         "micro-batches : %.0f (mean %.2f requests / %.1f rows, max %.0f)\n"
         (f "count") (f "mean_requests") (f "mean_rows") (f "max_requests"))
  | None -> ()) ;
  (match Json.member "dataset_cache" j with
  | Some c ->
    let f k =
      match Option.bind (Json.member k c) Json.to_float with
      | Some x -> x
      | None -> 0.0
    in
    Buffer.add_string buf
      (Printf.sprintf "dataset cache : %.0f hits / %.0f misses (%.1f%% hit rate)\n"
         (f "hits") (f "misses")
         (100.0 *. f "hit_rate"))
  | None -> ()) ;
  (match Json.member "robustness" j with
  | Some r ->
    let f k =
      match Option.bind (Json.member k r) Json.to_float with
      | Some x -> x
      | None -> 0.0
    in
    Buffer.add_string buf
      (Printf.sprintf
         "robustness    : %.0f sheds (%.0f limiter), %.0f handler restarts, \
          %.0f write errors, %.0f/%.0f conns reused/fresh\n"
         (f "sheds") (f "limiter_sheds") (f "handler_restarts")
         (f "write_errors") (f "conns_reused") (f "conns_fresh"))
  | None -> ()) ;
  (match Json.member "concurrency" j with
  | Some c ->
    let f k =
      match Option.bind (Json.member k c) Json.to_float with
      | Some x -> x
      | None -> 0.0
    in
    let mode =
      match Option.bind (Json.member "lockdep" c) Json.to_str with
      | Some m -> m
      | None -> "off"
    in
    Buffer.add_string buf
      (Printf.sprintf
         "concurrency   : %.0f nested-region downgrades, lockdep %s%s\n"
         (f "nested_parallel_downgrades") mode
         (if mode = "on" then
            Printf.sprintf " (%.0f violations, %.0f warnings)"
              (f "lockdep_violations") (f "lockdep_warnings")
          else ""))
  | None -> ()) ;
  Buffer.contents buf
