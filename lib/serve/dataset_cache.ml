(* LRU cache as a recency-ordered association list under a mutex. The
   capacity is single digits (loaded datasets are large), so O(n)
   list surgery is noise next to what a hit saves. The lock is held
   across [load] on a miss: concurrent readers of a cold key then wait
   instead of loading the same dataset twice. *)

type 'a t = {
  m : Analysis.Sync.t;
  capacity : int;
  load : string -> 'a;
  mutable entries : (string * 'a) list;  (* most-recently-used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity ~load =
  if capacity < 1 then invalid_arg "Dataset_cache.create: capacity < 1" ;
  { m = Analysis.Sync.create ~name:"serve.dataset_cache" ();
    capacity;
    load;
    entries = [];
    hits = 0;
    misses = 0;
    evictions = 0
  }

let locked t f =
  Analysis.Sync.lock t.m ;
  Fun.protect ~finally:(fun () -> Analysis.Sync.unlock t.m) f

let get t key =
  locked t (fun () ->
      match List.assoc_opt key t.entries with
      | Some v ->
        t.hits <- t.hits + 1 ;
        t.entries <- (key, v) :: List.remove_assoc key t.entries ;
        v
      | None ->
        t.misses <- t.misses + 1 ;
        (* a failed load caches nothing: the exception propagates and
           the next lookup retries *)
        Fault.point "dataset_cache.load" ;
        let v = t.load key in
        let entries = (key, v) :: t.entries in
        let n = List.length entries in
        if n > t.capacity then begin
          t.evictions <- t.evictions + (n - t.capacity) ;
          t.entries <- List.filteri (fun i _ -> i < t.capacity) entries
        end
        else t.entries <- entries ;
        v)

let mem t key = locked t (fun () -> List.mem_assoc key t.entries)
let keys t = locked t (fun () -> List.map fst t.entries)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)
let evictions t = locked t (fun () -> t.evictions)
let length t = locked t (fun () -> List.length t.entries)
let capacity t = t.capacity
let clear t = locked t (fun () -> t.entries <- [])
