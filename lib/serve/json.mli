(** A minimal JSON value type with a strict parser and printer — the
    wire format of the scoring protocol (one value per line) and the
    manifest format of the model registry. Self-contained so serving
    adds no dependency beyond the stdlib. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (never contains a raw newline, so a
    value is always one protocol frame). Integral floats print without
    a fraction; all others round-trip ([%.17g]). *)

val of_string : string -> (t, string) result
(** Strict parse of exactly one JSON value (trailing whitespace
    allowed). Errors carry a character position. *)

(** {1 Accessors}

    Total lookups for protocol decoding: [None] on shape mismatch. *)

val member : string -> t -> t option
(** Field of an object. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] with an integral value. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option

val float_list : t -> float list option
(** An array of numbers. *)
