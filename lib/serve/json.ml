(* Minimal JSON: enough for the line-delimited scoring protocol and the
   registry manifests. The printer never emits raw control characters,
   so a rendered value is always a single protocol frame. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_into buf s =
  Buffer.add_char buf '"' ;
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s ;
  Buffer.add_char buf '"'

let num_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else if Float.is_nan x then "null" (* JSON has no NaN *)
  else if x = Float.infinity then "1e999"
  else if x = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" x

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (num_to_string x)
  | Str s -> escape_into buf s
  | Arr items ->
    Buffer.add_char buf '[' ;
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',' ;
        render buf v)
      items ;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{' ;
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',' ;
        escape_into buf k ;
        Buffer.add_char buf ':' ;
        render buf v)
      fields ;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v ;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l ;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"' ;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string" ;
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance () ;
        (if !pos >= n then error "unterminated escape" ;
         match s.[!pos] with
         | '"' -> Buffer.add_char buf '"' ; advance ()
         | '\\' -> Buffer.add_char buf '\\' ; advance ()
         | '/' -> Buffer.add_char buf '/' ; advance ()
         | 'b' -> Buffer.add_char buf '\b' ; advance ()
         | 'f' -> Buffer.add_char buf '\012' ; advance ()
         | 'n' -> Buffer.add_char buf '\n' ; advance ()
         | 'r' -> Buffer.add_char buf '\r' ; advance ()
         | 't' -> Buffer.add_char buf '\t' ; advance ()
         | 'u' ->
           advance () ;
           if !pos + 4 > n then error "truncated \\u escape" ;
           let hex = String.sub s !pos 4 in
           let code =
             match int_of_string_opt ("0x" ^ hex) with
             | Some c -> c
             | None -> error "bad \\u escape"
           in
           pos := !pos + 4 ;
           (* encode the code point as UTF-8 (surrogates kept as-is) *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6))) ;
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12))) ;
             Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F))) ;
             Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
           end
         | c -> error (Printf.sprintf "bad escape \\%c" c)) ;
        go ()
      | c ->
        Buffer.add_char buf c ;
        advance () ;
        go ()
    in
    go () ;
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance () ;
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done ;
      if !pos = d0 then error "expected digit"
    in
    digits () ;
    if peek () = Some '.' then begin
      advance () ;
      digits ()
    end ;
    (match peek () with
    | Some ('e' | 'E') ->
      advance () ;
      (match peek () with Some ('+' | '-') -> advance () | _ -> ()) ;
      digits ()
    | _ -> ()) ;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> error "malformed number"
  in
  let rec parse_value () =
    skip_ws () ;
    match peek () with
    | None -> error "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance () ;
      skip_ws () ;
      if peek () = Some ']' then begin
        advance () ;
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws () ;
        while peek () = Some ',' do
          advance () ;
          items := parse_value () :: !items ;
          skip_ws ()
        done ;
        expect ']' ;
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance () ;
      skip_ws () ;
      if peek () = Some '}' then begin
        advance () ;
        Obj []
      end
      else begin
        let field () =
          skip_ws () ;
          let k = parse_string () in
          skip_ws () ;
          expect ':' ;
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws () ;
        while peek () = Some ',' do
          advance () ;
          fields := field () :: !fields ;
          skip_ws ()
        done ;
        expect '}' ;
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> error (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws () ;
    if !pos <> n then error "trailing garbage" ;
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "json: %s at position %d" msg p)

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr l -> Some l | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let float_list v =
  match v with
  | Arr items ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Num x :: rest -> go (x :: acc) rest
      | _ -> None
    in
    go [] items
  | _ -> None
