(* Micro-batching queue. One mutex guards the queue and every request's
   state; the batching thread is the only caller of [exec], so kernels
   that assume a single caller (the La.Pool substrate) are safe.

   OCaml's Condition has no timed wait, so the close-the-batch timeout
   is implemented by polling: when a batch is open but neither full nor
   expired, the worker sleeps a quantum (max_wait/8, clamped to
   [50µs, 1ms]) and re-checks. The quantum only bounds how precisely
   max_wait is honored, not correctness. *)

type error = Overloaded | Deadline_exceeded | Expired | Rejected of string

let error_code = function
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Expired -> "expired"
  | Rejected _ -> "rejected"

type 'b state = Waiting | Done of 'b | Failed of error

type ('k, 'a, 'b) request = {
  key : 'k;
  payload : 'a;
  deadline : float option;
  enqueued : float;
  mutable state : 'b state;
}

type ('k, 'a, 'b) t = {
  m : Analysis.Sync.t;
  work : Analysis.Sync.cond;  (* signaled on submit and stop *)
  done_ : Analysis.Sync.cond;  (* broadcast when any request completes *)
  max_batch : int;
  max_wait : float;
  queue_bound : int;
  metrics : Metrics.t;
  size : 'a -> int;
  exec : 'k -> 'a array -> ('b, string) result array;
  queue : ('k, 'a, 'b) request Queue.t;
  mutable exec_ewma : float;  (* recent batch execution time, seconds *)
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

let now () = Clock.wall ()

let finish t req outcome =
  req.state <- outcome ;
  match outcome with
  | Failed e -> Metrics.record_error t.metrics ~code:(error_code e)
  | _ -> ()

(* Remove and complete every queued request whose deadline has passed —
   and, deadline-aware admission, every request whose remaining budget
   is smaller than what a batch execution is currently costing: it
   *will* be late, so shed it now with [Expired] instead of burning a
   batch slot to produce a silently-late answer. *)
let drop_expired t at =
  let keep = Queue.create () in
  let dropped = ref false in
  Queue.iter
    (fun req ->
      match req.deadline with
      | Some d when d < at ->
        finish t req (Failed Deadline_exceeded) ;
        dropped := true
      | Some d when d < at +. t.exec_ewma ->
        finish t req (Failed Expired) ;
        dropped := true
      | _ -> Queue.push req keep)
    t.queue ;
  if !dropped then begin
    Queue.clear t.queue ;
    Queue.transfer keep t.queue ;
    Analysis.Sync.broadcast t.done_
  end

(* Extract up to [max_batch] requests whose key equals the head's,
   preserving order; the rest stay queued. *)
let take_batch t key =
  let batch = ref [] and nbatch = ref 0 in
  let keep = Queue.create () in
  Queue.iter
    (fun req ->
      if !nbatch < t.max_batch && req.key = key then begin
        batch := req :: !batch ;
        incr nbatch
      end
      else Queue.push req keep)
    t.queue ;
  Queue.clear t.queue ;
  Queue.transfer keep t.queue ;
  Array.of_list (List.rev !batch)

let same_key_pending t key =
  let n = ref 0 in
  Queue.iter (fun req -> if req.key = key then incr n) t.queue ;
  !n

let quantum t = Float.min 1e-3 (Float.max 5e-5 (t.max_wait /. 8.0))

let run_batch t batch =
  let payloads = Array.map (fun r -> r.payload) batch in
  let key = batch.(0).key in
  let rows = Array.fold_left (fun acc p -> acc + t.size p) 0 payloads in
  let exec_t0 = now () in
  let results =
    match
      Fault.point "batcher.exec" ;
      t.exec key payloads
    with
    | results when Array.length results = Array.length batch -> results
    | results ->
      let msg =
        Printf.sprintf "executor returned %d results for %d requests"
          (Array.length results) (Array.length batch)
      in
      Array.map (fun _ -> Error msg) batch
    | exception e -> Array.map (fun _ -> Error (Printexc.to_string e)) batch
  in
  let exec_dt = now () -. exec_t0 in
  Analysis.Sync.lock t.m ;
  t.exec_ewma <-
    (if t.exec_ewma = 0.0 then exec_dt
     else (0.8 *. t.exec_ewma) +. (0.2 *. exec_dt)) ;
  Metrics.record_batch t.metrics ~requests:(Array.length batch) ~rows ;
  Array.iteri
    (fun i req ->
      match results.(i) with
      | Ok b -> finish t req (Done b)
      | Error msg -> finish t req (Failed (Rejected msg)))
    batch ;
  Analysis.Sync.broadcast t.done_ ;
  Analysis.Sync.unlock t.m

let rec worker t =
  Analysis.Sync.lock t.m ;
  while Queue.is_empty t.queue && not t.stopped do
    Analysis.Sync.wait t.work t.m
  done ;
  if Queue.is_empty t.queue && t.stopped then Analysis.Sync.unlock t.m
  else begin
    drop_expired t (now ()) ;
    if Queue.is_empty t.queue then begin
      Analysis.Sync.unlock t.m ;
      worker t
    end
    else begin
      let head = Queue.peek t.queue in
      let full = same_key_pending t head.key >= t.max_batch in
      let expired = now () -. head.enqueued >= t.max_wait in
      if full || expired || t.stopped then begin
        let batch = take_batch t head.key in
        Analysis.Sync.unlock t.m ;
        if Array.length batch > 0 then run_batch t batch ;
        worker t
      end
      else begin
        Analysis.Sync.unlock t.m ;
        Thread.delay (quantum t) ;
        worker t
      end
    end
  end

let create ?(max_batch = 64) ?(max_wait = 2e-3) ?(queue_bound = 1024) ~metrics
    ~size ~exec () =
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1" ;
  if max_wait < 0.0 then invalid_arg "Batcher.create: negative max_wait" ;
  if queue_bound < 1 then invalid_arg "Batcher.create: queue_bound < 1" ;
  let t =
    { m = Analysis.Sync.create ~name:"serve.batcher" ();
      work = Analysis.Sync.condition ();
      done_ = Analysis.Sync.condition ();
      max_batch;
      max_wait;
      queue_bound;
      metrics;
      size;
      exec;
      queue = Queue.create ();
      exec_ewma = 0.0;
      stopped = false;
      thread = None
    }
  in
  t.thread <- Some (Thread.create worker t) ;
  t

let submit t ?deadline key payload =
  (* before the enqueue: a fault here means the request was never
     queued, so the caller's error reply is still its exactly-one
     reply *)
  Fault.point "batcher.submit" ;
  Analysis.Sync.lock t.m ;
  if t.stopped then begin
    Analysis.Sync.unlock t.m ;
    Metrics.record_error t.metrics ~code:"rejected" ;
    Error (Rejected "server shutting down")
  end
  else if Queue.length t.queue >= t.queue_bound then begin
    Analysis.Sync.unlock t.m ;
    Metrics.record_error t.metrics ~code:"overloaded" ;
    Metrics.record_shed t.metrics ;
    Error Overloaded
  end
  else begin
    let req = { key; payload; deadline; enqueued = now (); state = Waiting } in
    Queue.push req t.queue ;
    Analysis.Sync.signal t.work ;
    let rec await () =
      match req.state with
      | Waiting ->
        Analysis.Sync.wait t.done_ t.m ;
        await ()
      | Done b -> Ok b
      | Failed e -> Error e
    in
    let result = await () in
    Analysis.Sync.unlock t.m ;
    result
  end

let pending t =
  Analysis.Sync.lock t.m ;
  let n = Queue.length t.queue in
  Analysis.Sync.unlock t.m ;
  n

let stop t =
  Analysis.Sync.lock t.m ;
  let th = t.thread in
  t.stopped <- true ;
  t.thread <- None ;
  Analysis.Sync.broadcast t.work ;
  Analysis.Sync.unlock t.m ;
  match th with Some th -> Thread.join th | None -> ()
