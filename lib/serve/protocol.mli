(** The scoring wire protocol: line-delimited JSON over a Unix domain
    socket. Each request is one JSON object terminated by a newline;
    the server answers with exactly one JSON object line per request,
    in order; a connection carries any number of requests. See
    docs/SERVING.md for the full specification. *)

type score_target =
  | Rows of float array array
      (** raw dense feature rows carried in the request *)
  | Dataset of { dataset : string; ids : int array }
      (** rows of a server-side normalized dataset (saved with
          [Io.save]); scored through the factorized rewrites *)
  | Dataset_where of { dataset : string; where : Morpheus.Pred.t }
      (** the [score_where] op: every dataset row satisfying the
          predicate, selected server-side by per-table masks + one
          factorized [select_rows] — segmented scoring as one
          factorized plan (docs/PLANNER.md) *)

type request =
  | Ping
  | List_models
  | Stats
  | Health
      (** self-healing status: ok/degraded, open circuits, handler
          restarts — cheap enough for a load balancer to poll *)
  | Score of {
      model : string;  (** registry reference: ["name"] or ["name@vN"] *)
      target : score_target;
      deadline_ms : float option;  (** relative per-request deadline *)
    }
  | Drain of string option
      (** take a member out gracefully: to the router, [Drain (Some
          shard)] stops routing new keys to that shard (it leaves the
          ring once in-flight work finishes); to a server, [Drain None]
          makes it answer [health] with [draining] and stop once its
          queue empties *)
  | Undrain of string option
      (** cancel a drain: rejoin the shard to the ring (router) or
          resume normal operation (server) *)
  | Membership
      (** control-plane snapshot: per-member state (active / suspect /
          draining / ejected), suspicion, probe counters, ring
          membership *)
  | Shutdown  (** ask the server to shut down gracefully *)

val op_names : string list
(** Every wire op, in parser order — the authoritative list that
    [morpheus lint] (rule E203) checks the {!request_of_json} cases
    and the docs/SERVING.md wire examples against. *)

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

val ok : (string * Json.t) list -> Json.t
(** [{"ok": true, …fields}] *)

val error : code:string -> message:string -> Json.t
(** [{"ok": false, "code": …, "message": …}] *)

val response_result : Json.t -> (Json.t, string * string) result
(** Split a response on its ["ok"] field; [Error (code, message)]
    mirrors {!error}. *)
