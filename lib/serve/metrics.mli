(** Serving metrics: request counters, log-bucketed latency histograms
    (p50/p95/p99), the micro-batch size distribution, and cache/shed
    counters. All recording paths are mutex-protected (handler threads
    and the batching thread write concurrently) and O(1). *)

type t

val create : unit -> t

val record : t -> op:string -> seconds:float -> unit
(** One completed request of kind [op] with its wall-clock latency. *)

val record_error : t -> code:string -> unit
(** One failed request by error code (["overloaded"],
    ["deadline_exceeded"], ["unknown_model"], …). *)

val record_batch : t -> requests:int -> rows:int -> unit
(** One executed micro-batch: how many requests were coalesced and how
    many data rows the fused product covered. *)

val record_cache : t -> hit:bool -> unit
(** A dataset-cache lookup. *)

val record_retry : t -> unit
(** One client-side retry attempt (recorded by {!Client.call_retry}
    when handed this metrics instance). *)

val record_shed : t -> unit
(** One request shed at the queue bound. *)

val record_limited : t -> unit
(** One request shed by the AIMD concurrency limiter. *)

val record_restart : t -> unit
(** One crashed handler thread restarted by the supervisor. *)

val record_write_error : t -> unit
(** One response write that failed (peer gone mid-write). *)

val record_conn_reused : t -> unit
(** One request attempt served over a kept-alive connection
    ({!Client.call_retry} reuse, or a router forwarding over a cached
    shard connection). *)

val record_conn_fresh : t -> unit
(** One request attempt that had to open a new connection. *)

val retries : t -> int
val sheds : t -> int
val limited : t -> int
val restarts : t -> int
val write_errors : t -> int
val conns_reused : t -> int
val conns_fresh : t -> int

val requests : t -> int
(** Total successful requests recorded. *)

val errors : t -> int

val quantile : t -> float -> float
(** [quantile t q] (q in [0,1]) of all recorded latencies, in seconds,
    read from the histogram (bucket upper edge — ≤ 12% overestimate by
    construction). 0 when empty. *)

val snapshot : t -> Json.t
(** The stats payload: per-op counts, error counts, latency summary
    (count/mean/p50/p95/p99/max), batch-size distribution, cache hit
    rate. *)

val summary : t -> string
(** Human-readable multi-line dump (printed on server shutdown). *)
