(** The transport seam: one address type for both Unix-domain sockets
    and loopback/LAN TCP, so the line-delimited-JSON protocol runs
    unchanged over either. The server binds one, the client connects to
    one, and the cluster router speaks to its shards through the same
    seam — codec, deadlines, and shedding are transport-agnostic. *)

type t =
  | Unix_path of string  (** Unix domain socket path *)
  | Tcp of string * int  (** host (name or dotted quad) and port *)

val of_string_result : string -> (t, string) result
(** Parse an endpoint string. ["unix:PATH"] and ["tcp:HOST:PORT"] are
    explicit; a bare ["HOST:PORT"] (port all digits, no ['/'] in the
    host) is TCP; anything else is a Unix socket path. IPv6 literals
    use brackets: ["tcp:[::1]:8080"]. ["HOST:0"] asks the kernel for
    an ephemeral port — read it back with {!bound_endpoint}. Returns
    [Error reason] for empty endpoints, empty hosts/ports/paths in the
    explicit forms, and out-of-range ports — CLI layers print the
    reason as a usage error instead of a backtrace. *)

val of_string : string -> t
(** {!of_string_result}, raising [Invalid_argument] on [Error]. *)

val to_string : t -> string
(** Inverse of {!of_string}: ["PATH"] for Unix paths, ["HOST:PORT"]
    for TCP. *)

val sockaddr : t -> Unix.sockaddr
(** The address to bind or connect. Raises [Invalid_argument] if a TCP
    host does not resolve. *)

val listen : ?backlog:int -> t -> Unix.file_descr
(** Bind and listen (backlog 64 by default). Unix paths remove a stale
    socket file first; TCP sockets set [SO_REUSEADDR]. Raises
    [Unix.Unix_error] if the address cannot be bound. *)

val connect : t -> Unix.file_descr
(** A connected socket (TCP sets [TCP_NODELAY]: frames are small and
    latency-bound). Raises [Unix.Unix_error] on refusal. *)

val bound_endpoint : t -> Unix.file_descr -> t
(** The endpoint actually bound, read back from the kernel — resolves
    port 0 to the ephemeral port assigned. *)

val cleanup : t -> unit
(** Remove the socket file of a Unix-path endpoint (no-op for TCP). *)

(** {2 Fault-pointed transport I/O}

    Every accept/read/write in the serving stack goes through these
    wrappers so transport-level chaos — refused accepts, dropped
    reads, stalled links, torn frames — is injectable deterministically
    via the [endpoint.*] fault points. *)

val accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr
(** [Unix.accept ~cloexec:true] behind fault point [endpoint.accept]. *)

val read : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read] behind fault point [endpoint.read]. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string. Fault point [endpoint.stall] fires before
    any byte moves (arm it with a delay action to simulate a slow
    link); [endpoint.write.torn] writes a prefix of the payload and
    then raises [Fault.Injected], leaving the peer holding a half
    frame that must be discarded at connection close. *)
