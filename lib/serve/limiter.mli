(** AIMD adaptive concurrency limit: admission cap grows additively
    while the completion-latency ewma stays at or under [target],
    shrinks multiplicatively on failures or latency overshoot. Bounds
    in-flight work by observed capacity so overload is shed at
    admission with a structured error instead of queueing into
    deadline blowout. Thread-safe (Sync-named lock [serve.limiter]);
    [now] is injectable for tests. *)

type t

val create :
  ?min_limit:float ->
  ?max_limit:float ->
  ?initial:float ->
  ?backoff:float ->
  ?decrease_interval:float ->
  ?now:(unit -> float) ->
  target:float ->
  unit ->
  t
(** [target] is the latency goal in seconds. Defaults: min 2, max 256,
    initial 16, backoff 0.7 (multiplicative decrease factor, must be
    in (0,1)), at most one decrease per 0.1s. *)

val try_acquire : t -> bool
(** Admit one request if in-flight < limit; [false] counts a shed. *)

val release : t -> latency:float -> ok:bool -> unit
(** Complete a request admitted by {!try_acquire}: folds [latency]
    (seconds) into the ewma and adjusts the limit — multiplicative
    decrease when [not ok] or the ewma exceeds target, additive
    increase (+1/limit) otherwise. *)

val limit : t -> float
val in_flight : t -> int
val ewma : t -> float
val shed : t -> int

val snapshot : t -> Json.t
(** Limit, in-flight, ewma, and counters for the [stats] payload. *)
