(* Wire protocol: request/response (de)serialization. Kept free of any
   I/O so both the server and the client (and the tests) share one
   definition of the frames. *)

type score_target =
  | Rows of float array array
  | Dataset of { dataset : string; ids : int array }
  | Dataset_where of { dataset : string; where : Morpheus.Pred.t }

type request =
  | Ping
  | List_models
  | Stats
  | Health
  | Score of {
      model : string;
      target : score_target;
      deadline_ms : float option;
    }
  | Drain of string option
  | Undrain of string option
  | Membership
  | Shutdown

(* Kept in parser order; `morpheus lint` (E203) cross-checks this list
   against the request_of_json cases and the SERVING.md examples. *)
let op_names =
  [ "ping";
    "list";
    "stats";
    "health";
    "score";
    "score_where";
    "drain";
    "undrain";
    "membership";
    "shutdown"
  ]

let request_to_json = function
  | Ping -> Json.Obj [ ("op", Json.Str "ping") ]
  | List_models -> Json.Obj [ ("op", Json.Str "list") ]
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Health -> Json.Obj [ ("op", Json.Str "health") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]
  | Membership -> Json.Obj [ ("op", Json.Str "membership") ]
  | Drain shard ->
    Json.Obj
      (("op", Json.Str "drain")
      :: (match shard with Some s -> [ ("shard", Json.Str s) ] | None -> []))
  | Undrain shard ->
    Json.Obj
      (("op", Json.Str "undrain")
      :: (match shard with Some s -> [ ("shard", Json.Str s) ] | None -> []))
  | Score { model; target; deadline_ms } ->
    (* the predicate form travels under its own op name, score_where *)
    let opname =
      match target with Dataset_where _ -> "score_where" | _ -> "score"
    in
    let base = [ ("op", Json.Str opname); ("model", Json.Str model) ] in
    let target_fields =
      match target with
      | Rows rows ->
        [ ( "rows",
            Json.Arr
              (Array.to_list rows
              |> List.map (fun r ->
                     Json.Arr (Array.to_list r |> List.map (fun x -> Json.Num x)))
              ) )
        ]
      | Dataset { dataset; ids } ->
        [ ("dataset", Json.Str dataset);
          ( "ids",
            Json.Arr
              (Array.to_list ids
              |> List.map (fun i -> Json.Num (float_of_int i))) )
        ]
      | Dataset_where { dataset; where } ->
        (* canonical rendering: the same predicate always serializes
           identically, so equal filters fuse into one batch *)
        [ ("dataset", Json.Str dataset);
          ("where", Json.Str (Morpheus.Pred.to_string where))
        ]
    in
    let deadline =
      match deadline_ms with
      | Some ms -> [ ("deadline_ms", Json.Num ms) ]
      | None -> []
    in
    Json.Obj (base @ target_fields @ deadline)

let ( let* ) = Result.bind

let request_of_json j =
  match Option.bind (Json.member "op" j) Json.to_str with
  | None -> Error "missing op"
  | Some "ping" -> Ok Ping
  | Some "list" -> Ok List_models
  | Some "stats" -> Ok Stats
  | Some "health" -> Ok Health
  | Some "shutdown" -> Ok Shutdown
  | Some "membership" -> Ok Membership
  | Some "drain" -> Ok (Drain (Option.bind (Json.member "shard" j) Json.to_str))
  | Some "undrain" ->
    Ok (Undrain (Option.bind (Json.member "shard" j) Json.to_str))
  | Some "score" ->
    let* model =
      match Option.bind (Json.member "model" j) Json.to_str with
      | Some m -> Ok m
      | None -> Error "score: missing model"
    in
    let deadline_ms =
      match Option.bind (Json.member "deadline_ms" j) Json.to_float with
      | Some ms when ms > 0.0 -> Some ms
      | _ -> None
    in
    let* target =
      match (Json.member "rows" j, Json.member "dataset" j) with
      | Some _, Some _ -> Error "score: give rows or dataset+ids, not both"
      | Some rows, None -> (
        match Json.to_list rows with
        | None -> Error "score: rows must be an array of arrays"
        | Some items ->
          let rec go acc = function
            | [] -> Ok (Rows (Array.of_list (List.rev acc)))
            | item :: rest -> (
              match Json.float_list item with
              | Some r -> go (Array.of_list r :: acc) rest
              | None -> Error "score: rows must be arrays of numbers")
          in
          go [] items)
      | None, Some ds -> (
        match
          ( Json.to_str ds,
            Option.bind (Json.member "ids" j) Json.to_list )
        with
        | Some dataset, Some items ->
          let rec go acc = function
            | [] -> Ok (Dataset { dataset; ids = Array.of_list (List.rev acc) })
            | item :: rest -> (
              match Json.to_int item with
              | Some i when i >= 0 -> go (i :: acc) rest
              | _ -> Error "score: ids must be non-negative integers")
          in
          go [] items
        | Some _, None -> Error "score: dataset requires ids"
        | None, _ -> Error "score: dataset must be a string")
      | None, None -> Error "score: missing rows or dataset+ids"
    in
    Ok (Score { model; target; deadline_ms })
  | Some "score_where" ->
    let* model =
      match Option.bind (Json.member "model" j) Json.to_str with
      | Some m -> Ok m
      | None -> Error "score_where: missing model"
    in
    let deadline_ms =
      match Option.bind (Json.member "deadline_ms" j) Json.to_float with
      | Some ms when ms > 0.0 -> Some ms
      | _ -> None
    in
    let* dataset =
      match Option.bind (Json.member "dataset" j) Json.to_str with
      | Some d -> Ok d
      | None -> Error "score_where: missing dataset"
    in
    let* where =
      match Option.bind (Json.member "where" j) Json.to_str with
      | None -> Error "score_where: missing where"
      | Some src -> (
        match Morpheus.Pred.parse src with
        | Ok p -> Ok p
        | Error msg -> Error (Printf.sprintf "score_where: bad where: %s" msg))
    in
    Ok (Score { model; target = Dataset_where { dataset; where }; deadline_ms })
  | Some op -> Error (Printf.sprintf "unknown op %S" op)

let ok fields = Json.Obj (("ok", Json.Bool true) :: fields)

let error ~code ~message =
  Json.Obj
    [ ("ok", Json.Bool false);
      ("code", Json.Str code);
      ("message", Json.Str message)
    ]

let response_result j =
  match Option.bind (Json.member "ok" j) Json.to_bool with
  | Some true -> Ok j
  | Some false ->
    let get k =
      Option.value ~default:"" (Option.bind (Json.member k j) Json.to_str)
    in
    Error (get "code", get "message")
  | None -> Error ("bad_response", "response missing ok field")
