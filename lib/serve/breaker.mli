(** A circuit breaker: after [threshold] consecutive failures the
    circuit {e opens} and callers are refused fast (no load attempt)
    for [cooldown] seconds; then one probe call is let through
    ({e half-open}) — success closes the circuit, failure re-opens it
    for another cooldown. The server hangs one breaker on each dataset
    path so a registry of healthy datasets keeps serving while a broken
    one fails fast instead of hammering the filesystem on every batch.

    Thread-safe; [now] is injectable for tests. *)

type t

type state = Closed | Open | Half_open

val create :
  ?threshold:int ->
  ?cooldown:float ->
  ?jitter:float ->
  ?seed:int ->
  ?now:(unit -> float) ->
  unit ->
  t
(** Defaults: threshold 5 consecutive failures, cooldown 1s, jitter 0,
    seed 0, [now = Unix.gettimeofday]. Each open stretches its cooldown
    to [cooldown * (1 + jitter * u)] where [u ∈ [0,1)] is a
    deterministic hash of [(seed, open count)] — give sibling breakers
    distinct seeds so probes after a shared outage spread out instead
    of arriving in lockstep. Raises [Invalid_argument] on
    [threshold < 1], negative [cooldown], or negative [jitter]. *)

val allow : t -> bool
(** May the protected call proceed? [true] when closed; when open,
    [false] until the cooldown elapses, then [true] exactly once (the
    probe) until that probe reports back. *)

val success : t -> unit
(** The protected call succeeded: reset failures, close the circuit. *)

val failure : t -> unit
(** The protected call failed: count it; trips the circuit at
    [threshold] consecutive failures, and re-opens it (fresh cooldown)
    when a probe fails. *)

val state : t -> state

val opens : t -> int
(** Times the circuit has tripped (including probe-failure re-opens). *)
