(** Micro-batching: concurrent scoring requests against the same model
    (and dataset) coalesce into one fused execution — for factorized
    scoring, one [select_rows] + one factorized matrix-vector product
    instead of N row gathers. The paper's rewrites make the batch cost
    O(batch·d_S + d_R) where N independent requests would each pay the
    full [Rᵢ]-side work.

    Generic over key, payload, and result so the deadline/shedding
    semantics are testable with an injected (slow, failing, counting)
    executor. A batch only ever contains requests with equal keys, in
    submission order, so results are deterministic given an order of
    arrival — and bitwise-identical to scoring each request alone,
    because every scoring path accumulates output rows independently. *)

type error =
  | Overloaded  (** shed at submission: the queue was at its bound *)
  | Deadline_exceeded  (** still queued when its deadline passed *)
  | Expired
      (** shed at batch formation: the remaining budget is smaller
          than the current batch-execution ewma, so the request cannot
          finish in time — refused rather than answered late *)
  | Rejected of string  (** the executor failed this batch *)

val error_code : error -> string
(** Protocol error code: ["overloaded"], ["deadline_exceeded"],
    ["expired"], ["rejected"]. *)

type ('k, 'a, 'b) t

val create :
  ?max_batch:int ->
  ?max_wait:float ->
  ?queue_bound:int ->
  metrics:Metrics.t ->
  size:('a -> int) ->
  exec:('k -> 'a array -> ('b, string) result array) ->
  unit ->
  ('k, 'a, 'b) t
(** Starts the batching thread. A batch closes when [max_batch]
    same-key requests are pending (default 64) or the oldest of them
    has waited [max_wait] seconds (default 2ms; 0 means "whatever is
    queued right now"). [queue_bound] (default 1024) is the shedding
    threshold on pending requests. [size] reports a request's row count
    for the batch metrics. [exec] receives equal-key payloads in
    submission order and returns one result per payload — per-request
    [Error]s become {!Rejected} for that request only; a length
    mismatch or a raised exception rejects the whole batch. It runs on
    the batching thread only, so a single-caller kernel substrate
    ({!La.Pool}) is safe. *)

val submit : ('k, 'a, 'b) t -> ?deadline:float -> 'k -> 'a -> ('b, error) result
(** Blocks the calling thread until its batch executes. [deadline] is
    an absolute [Unix.gettimeofday] instant checked at batch formation:
    a request whose deadline passed while queued is dropped without
    being scored. A deadline cannot abort a batch already executing. *)

val pending : ('k, 'a, 'b) t -> int

val stop : ('k, 'a, 'b) t -> unit
(** Drain: already-queued requests still execute, new submissions are
    rejected; returns after the batching thread exits. Idempotent. *)
