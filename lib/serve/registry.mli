(** The model registry: versioned on-disk persistence for trained
    artifacts, reusing {!Morpheus.Io}'s framed binary format and its
    atomic tmp+rename discipline. Layout:

    {v
    registry/
      <name>/
        v1/
          artifact.bin     framed Marshal payload (Io.write_payload)
          manifest.json    kind, dims, schema hash, training metadata
        v2/ …
    v}

    [manifest.json] is written last, so it is the commit point of a
    save: a version directory without a manifest is invisible to
    {!list}/{!resolve} (a crashed save can never be served). *)

type manifest = {
  name : string;
  version : int;
  kind : string;  (** {!Artifact.kind} *)
  feature_dim : int;
  schema_hash : string option;
      (** digest of the training dataset's column structure; scoring
          over a dataset with a different hash is refused *)
  created : float;  (** unix time of the save *)
  meta : (string * string) list;  (** free-form training metadata *)
}

type entry = { id : string; manifest : manifest }
(** [id] is the canonical ["name@vN"]. *)

val schema_hash : Morpheus.Normalized.t -> string
(** Digest of the column structure (entity width + per-part attribute
    widths) — invariant under row count and dense/sparse choice, so a
    model trained on one extract matches any same-schema dataset. *)

val save :
  dir:string ->
  name:string ->
  ?schema_hash:string ->
  ?meta:(string * string) list ->
  Artifact.t ->
  entry
(** Persist the artifact as the next version of [name] (v1 when new),
    creating directories as needed. Atomic: readers either see the
    complete version or nothing. Raises [Invalid_argument] on a name
    that is empty or contains [/], [@], or whitespace. *)

val list : dir:string -> entry list
(** Every committed version, sorted by name then version. An absent or
    empty registry directory lists as []. *)

val resolve : dir:string -> string -> (entry, string) result
(** ["name"] resolves to its newest version, ["name@vN"] to exactly
    that version. *)

val load : dir:string -> string -> (Artifact.t * manifest, string) result
(** {!resolve} + read + re-validate the artifact payload. Corrupt
    files report as [Error], never as a crash or garbage model. *)

val delete : dir:string -> string -> (unit, string) result
(** Remove one version (["name@vN"]) or a whole model (["name"]). *)

val recover : dir:string -> (string * string) list
(** Startup recovery sweep: move crash litter from the tmp+rename
    protocol — orphaned [*.tmp] files and version directories missing
    [manifest.json] — into [<dir>/_quarantine/] (renamed, never
    deleted). Returns [(original, quarantined)] pairs. Registry names
    may not start with ['_'], so the quarantine directory can never
    collide with a model; {!list} skips it. An absent registry sweeps
    to []. Run by the server at startup and by
    [morpheus models --recover]. *)
