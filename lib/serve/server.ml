(* The scoring server. Data path of a score request:

     handler thread: read frame → parse → resolve model (registry) →
       validate shapes → Batcher.submit (blocks)
     batching thread: coalesce same-(model, dataset) requests →
       one factorized select_rows + lmm (or one dense gemm) →
       split results per request
     handler thread: render response frame → write

   The batching thread is the only thread that runs LA kernels, so the
   La.Pool single-caller contract holds; parallelism inside a batch
   still comes from the Exec backend. *)

open La
open Morpheus

type config = {
  registry : string;
  socket : string;
  max_batch : int;
  max_wait : float;
  queue_bound : int;
  handlers : int;
  cache_capacity : int;
  default_deadline_ms : float option;
  breaker_threshold : int;
  breaker_cooldown : float;
  drain_on_term : bool;
  limiter_target_ms : float option;
}

let default_config ~registry ~socket =
  { registry;
    socket;
    max_batch = 64;
    max_wait = 2e-3;
    queue_bound = 1024;
    handlers = 4;
    cache_capacity = 4;
    default_deadline_ms = None;
    breaker_threshold = 5;
    breaker_cooldown = 1.0;
    drain_on_term = false;
    limiter_target_ms = None
  }

(* Batches coalesce per (resolved model version, dataset, canonical
   predicate): requests for the same model over the same dataset fuse
   into one product, and score_where requests with the same predicate
   (canonically rendered by Pred.to_string) share one mask +
   select_rows + score. *)
type batch_key = {
  bk_model : string;
  bk_dataset : string option;
  bk_where : string option;
}

type batch_payload =
  | P_rows of float array array
  | P_ids of int array
  | P_where of Pred.t

let payload_rows = function
  | P_rows rows -> Array.length rows
  | P_ids ids -> Array.length ids
  | P_where _ -> 1 (* row count known only after the mask runs *)

type t = {
  cfg : config;
  metrics : Metrics.t;
  listen_fd : Unix.file_descr;
  bound : Endpoint.t;  (* the endpoint actually bound (ephemeral ports resolved) *)
  (* accepted connections awaiting a handler *)
  conns : Unix.file_descr Queue.t;
  conn_m : Analysis.Sync.t;
  conn_cv : Analysis.Sync.cond;
  (* loaded artifacts, keyed by resolved "name@vN" *)
  models : (string, Artifact.t * Registry.manifest) Hashtbl.t;
  model_m : Analysis.Sync.t;
  (* loaded normalized datasets + their schema hash, LRU *)
  datasets : (Normalized.t * string) Dataset_cache.t;
  mutable batcher : (batch_key, batch_payload, float array) Batcher.t option;
  (* one circuit breaker per dataset path *)
  breakers : (string, Breaker.t) Hashtbl.t;
  breaker_m : Analysis.Sync.t;
  (* handler supervision: slot i's thread, and whether it crashed *)
  mutable slots : Thread.t array;
  crashed : bool array;
  sup_m : Analysis.Sync.t;
  recovered : int;  (* registry litter quarantined at startup *)
  (* AIMD admission cap over in-flight score work (None = unlimited) *)
  limiter : Limiter.t option;
  (* graceful drain: answer health with "draining", finish the queue,
     then stop — entered by the drain op or (with [drain_on_term])
     SIGTERM *)
  drain_m : Analysis.Sync.t;
  mutable draining : bool;
  mutable active : int;  (* score requests inside Batcher.submit *)
  stop_m : Analysis.Sync.t;
  stop_cv : Analysis.Sync.cond;
  mutable stopping : bool;
  mutable threads : Thread.t list;
  started : float;
}

let now () = Clock.wall ()

(* ---- model / dataset loading ---- *)

let load_model t id =
  Analysis.Sync.lock t.model_m ;
  Fun.protect
    ~finally:(fun () -> Analysis.Sync.unlock t.model_m)
    (fun () ->
      match Hashtbl.find_opt t.models id with
      | Some am -> Ok am
      | None -> (
        match Registry.load ~dir:t.cfg.registry id with
        | Ok (artifact, manifest) ->
          Hashtbl.replace t.models id (artifact, manifest) ;
          Ok (artifact, manifest)
        | Error _ as e -> e))

let dataset_breaker t path =
  Analysis.Sync.lock t.breaker_m ;
  let b =
    match Hashtbl.find_opt t.breakers path with
    | Some b -> b
    | None ->
      let b =
        (* per-path seed: breakers tripped by one shared outage probe
           at spread-out instants instead of in lockstep *)
        Breaker.create ~threshold:t.cfg.breaker_threshold
          ~cooldown:t.cfg.breaker_cooldown ~jitter:0.1
          ~seed:(Hashtbl.hash path) ()
      in
      Hashtbl.replace t.breakers path b ;
      b
  in
  Analysis.Sync.unlock t.breaker_m ;
  b

let open_circuits t =
  Analysis.Sync.lock t.breaker_m ;
  let n =
    Hashtbl.fold
      (fun _ b acc -> if Breaker.state b = Breaker.Open then acc + 1 else acc)
      t.breakers 0
  in
  Analysis.Sync.unlock t.breaker_m ;
  n

let get_dataset t path =
  (* hit/miss recorded against the metrics before the (possibly slow)
     load; only the batching thread calls this, so mem→get is atomic
     enough. A breaker per path makes a persistently broken dataset
     fail fast instead of hammering the filesystem on every batch. *)
  let b = dataset_breaker t path in
  if not (Breaker.allow b) then begin
    Metrics.record_error t.metrics ~code:"circuit_open" ;
    Error
      (Printf.sprintf "circuit open for dataset %s (recent loads failed)" path)
  end
  else begin
    Metrics.record_cache t.metrics ~hit:(Dataset_cache.mem t.datasets path) ;
    let fail msg =
      Breaker.failure b ;
      Error msg
    in
    match Dataset_cache.get t.datasets path with
    | v ->
      Breaker.success b ;
      Ok v
    | exception Invalid_argument msg -> fail msg
    | exception Io.Corrupt msg -> fail msg
    | exception Sys_error msg -> fail msg
    | exception Fault.Injected p -> fail ("injected fault at " ^ p)
    | exception Validate.Numeric_error i -> fail (Validate.message i)
  end

(* ---- the fused batch executor ---- *)

let all_error payloads msg = Array.map (fun _ -> Error msg) payloads

(* Split a flat prediction array back into per-request slices. *)
let split_results payloads preds counts =
  let results = Array.make (Array.length payloads) (Ok [||]) in
  let off = ref 0 in
  Array.iteri
    (fun i count ->
      match count with
      | Error _ as e -> results.(i) <- e
      | Ok c ->
        results.(i) <- Ok (Array.sub preds !off c) ;
        off := !off + c)
    counts ;
  results

(* A model or dataset that slipped past the load-time guards must still
   never serve NaN: scan the fused prediction vector once before
   splitting it back per request. *)
let checked_preds payloads preds counts =
  if Validate.array_ok preds then split_results payloads preds counts
  else all_error payloads "non-finite prediction (corrupt model or dataset)"

let exec_batch t key payloads =
  match load_model t key.bk_model with
  | Error msg -> all_error payloads msg
  | Ok (artifact, manifest) -> (
    match key.bk_dataset with
    | None ->
      (* raw dense rows: one gemm over the concatenated rows *)
      let rows =
        Array.to_list payloads
        |> List.concat_map (function
             | P_rows rows -> Array.to_list rows
             | P_ids _ | P_where _ -> [])
      in
      let counts =
        Array.map
          (function
            | P_rows rows -> Ok (Array.length rows)
            | P_ids _ | P_where _ -> Error "row batch mixed with ids")
          payloads
      in
      if rows = [] then Array.map (fun _ -> Ok [||]) payloads
      else
        let preds =
          Artifact.score_dense artifact (Dense.of_arrays (Array.of_list rows))
        in
        checked_preds payloads preds counts
    | Some path -> (
      match get_dataset t path with
      | Error msg -> all_error payloads msg
      | Ok (tn, hash) -> (
        match manifest.Registry.schema_hash with
        | Some h when h <> hash ->
          all_error payloads
            (Printf.sprintf
               "schema mismatch: model %s was trained on a different column \
                structure than dataset %s"
               key.bk_model path)
        | _ -> (
          match key.bk_where with
          | Some _ -> (
            (* every payload under this key carries the same canonical
               predicate; evaluate the per-table masks and the
               factorized select_rows + score once, then hand each
               fused request the full segment's predictions *)
            match
              Array.find_opt
                (function P_where _ -> true | _ -> false)
                payloads
            with
            | None -> all_error payloads "where batch carries no predicate"
            | Some (P_rows _ | P_ids _) -> assert false
            | Some (P_where pred) -> (
              match Relalg.mask tn pred with
              | exception Relalg.Rel_error msg -> all_error payloads msg
              | ids ->
                if Array.length ids = 0 then
                  Array.map
                    (function
                      | P_where _ -> Ok [||]
                      | _ -> Error "where batch mixed with rows/ids")
                    payloads
                else
                  let preds =
                    Artifact.score_normalized artifact
                      (Normalized.select_rows tn ids)
                  in
                  if Validate.array_ok preds then
                    Array.map
                      (function
                        | P_where _ -> Ok (Array.copy preds)
                        | _ -> Error "where batch mixed with rows/ids")
                      payloads
                  else
                    all_error payloads
                      "non-finite prediction (corrupt model or dataset)"))
          | None ->
            let n = Normalized.rows tn in
            (* per-request id validation; only valid requests join the
               fused gather *)
            let counts =
              Array.map
                (function
                  | P_ids ids ->
                    if Array.exists (fun i -> i < 0 || i >= n) ids then
                      Error
                        (Printf.sprintf
                           "row id out of range (dataset has %d rows)" n)
                    else Ok (Array.length ids)
                  | P_rows _ | P_where _ -> Error "id batch mixed with rows")
                payloads
            in
            let ids =
              Array.to_list payloads
              |> List.concat_map (fun p ->
                     match p with
                     | P_ids ids
                       when not (Array.exists (fun i -> i < 0 || i >= n) ids) ->
                       Array.to_list ids
                     | _ -> [])
              |> Array.of_list
            in
            if Array.length ids = 0 then
              split_results payloads [||] counts
            else
              (* the micro-batching payoff: one factorized select_rows +
                 one factorized product for the whole batch *)
              let preds =
                Artifact.score_normalized artifact
                  (Normalized.select_rows tn ids)
              in
              checked_preds payloads preds counts))))

(* ---- stop-aware socket reads ---- *)

(* Buffered line reader that wakes every 100ms to honor a stop. *)
type reader = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  chunk : Bytes.t;
}

let reader fd = { fd; rbuf = Buffer.create 512; chunk = Bytes.create 4096 }

(* A frame that exceeds this without a newline is hostile or corrupt:
   answer a structured error and drop the connection rather than
   buffering without bound. *)
let max_frame = 1 lsl 20

type frame = Frame of string | Eof | Oversized

let rec read_frame t r =
  let contents = Buffer.contents r.rbuf in
  match String.index_opt contents '\n' with
  | Some i ->
    let line = String.sub contents 0 i in
    Buffer.clear r.rbuf ;
    Buffer.add_string r.rbuf
      (String.sub contents (i + 1) (String.length contents - i - 1)) ;
    if String.length line > max_frame then Oversized else Frame line
  | None ->
    if Buffer.length r.rbuf > max_frame then Oversized
    else if t.stopping then Eof
    else begin
      match Unix.select [ r.fd ] [] [] 0.1 with
      | [], _, _ -> read_frame t r
      | _ -> (
        match Endpoint.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> Eof (* EOF; any partial line is dropped *)
        | n ->
          Buffer.add_subbytes r.rbuf r.chunk 0 n ;
          read_frame t r
        | exception Unix.Unix_error ((EBADF | ECONNRESET | EPIPE), _, _) -> Eof
        | exception Fault.Injected _ -> Eof)
      | exception Unix.Unix_error (EBADF, _, _) -> Eof
    end

(* SIGPIPE is ignored at startup, so a dead peer surfaces here as
   EPIPE → [false], which the caller accounts as a write error. An
   injected transport fault (endpoint.write.torn closes the conn with
   a half frame on the wire) is accounted the same way. *)
let write_frame fd json =
  let line = Json.to_string json ^ "\n" in
  try
    Fault.point "server.write" ;
    Endpoint.write_all fd line ;
    true
  with
  | Unix.Unix_error _ -> false
  | Fault.Injected _ -> false

(* ---- request handling ---- *)

let manifest_json (e : Registry.entry) =
  let m = e.Registry.manifest in
  Json.Obj
    [ ("id", Json.Str e.Registry.id);
      ("name", Json.Str m.Registry.name);
      ("version", Json.Num (float_of_int m.Registry.version));
      ("kind", Json.Str m.Registry.kind);
      ("feature_dim", Json.Num (float_of_int m.Registry.feature_dim));
      ( "schema_hash",
        match m.Registry.schema_hash with
        | Some h -> Json.Str h
        | None -> Json.Null );
      ("created", Json.Num m.Registry.created);
      ( "meta",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) m.Registry.meta) )
    ]

let stats t =
  let metrics = Metrics.snapshot t.metrics in
  let server =
    Json.Obj
      [ ("uptime_s", Json.Num (now () -. t.started));
        ( "models_loaded",
          Json.Num
            (float_of_int
               (Analysis.Sync.lock t.model_m ;
                let n = Hashtbl.length t.models in
                Analysis.Sync.unlock t.model_m ;
                n)) );
        ( "dataset_cache",
          Json.Obj
            [ ("entries", Json.Num (float_of_int (Dataset_cache.length t.datasets)));
              ("capacity", Json.Num (float_of_int (Dataset_cache.capacity t.datasets)));
              ("evictions", Json.Num (float_of_int (Dataset_cache.evictions t.datasets)))
            ] );
        ( "queue",
          Json.Obj
            [ ( "pending",
                Json.Num
                  (float_of_int
                     (match t.batcher with
                     | Some b -> Batcher.pending b
                     | None -> 0)) );
              ("bound", Json.Num (float_of_int t.cfg.queue_bound))
            ] );
        ("open_circuits", Json.Num (float_of_int (open_circuits t)));
        ("recovered_at_startup", Json.Num (float_of_int t.recovered));
        ( "draining",
          Json.Bool
            (Analysis.Sync.lock t.drain_m ;
             let d = t.draining in
             Analysis.Sync.unlock t.drain_m ;
             d) );
        ( "active",
          Json.Num
            (float_of_int
               (Analysis.Sync.lock t.drain_m ;
                let a = t.active in
                Analysis.Sync.unlock t.drain_m ;
                a)) );
        ( "limiter",
          match t.limiter with
          | Some lim -> Limiter.snapshot lim
          | None -> Json.Null )
      ]
  in
  match metrics with
  | Json.Obj fields -> Json.Obj (fields @ [ ("server", server) ])
  | other -> Json.Obj [ ("metrics", other); ("server", server) ]

let signal_stop t =
  Analysis.Sync.lock t.stop_m ;
  t.stopping <- true ;
  Analysis.Sync.broadcast t.stop_cv ;
  Analysis.Sync.unlock t.stop_m ;
  Analysis.Sync.lock t.conn_m ;
  Analysis.Sync.broadcast t.conn_cv ;
  Analysis.Sync.unlock t.conn_m

(* ---- graceful drain ---- *)

let is_draining t =
  Analysis.Sync.lock t.drain_m ;
  let d = t.draining in
  Analysis.Sync.unlock t.drain_m ;
  d

let enter_score t =
  Analysis.Sync.lock t.drain_m ;
  t.active <- t.active + 1 ;
  Analysis.Sync.unlock t.drain_m

let exit_score t =
  Analysis.Sync.lock t.drain_m ;
  t.active <- t.active - 1 ;
  Analysis.Sync.unlock t.drain_m

let request_drain t =
  Analysis.Sync.lock t.drain_m ;
  t.draining <- true ;
  Analysis.Sync.unlock t.drain_m

let cancel_drain t =
  Analysis.Sync.lock t.drain_m ;
  let was = t.draining in
  t.draining <- false ;
  Analysis.Sync.unlock t.drain_m ;
  was

(* Watch for a drain to complete: the server stops once it has been
   draining with an empty queue and no in-flight score for ~8
   consecutive 25ms polls — the grace window is what makes an undrain
   racing the last request safe (and cheap to test). *)
let drain_watcher t =
  let idle = ref 0 in
  let rec loop () =
    if t.stopping then ()
    else begin
      Thread.delay 0.025 ;
      Analysis.Sync.lock t.drain_m ;
      let draining = t.draining and active = t.active in
      Analysis.Sync.unlock t.drain_m ;
      let pending =
        match t.batcher with Some b -> Batcher.pending b | None -> 0
      in
      if draining && active = 0 && pending = 0 then incr idle else idle := 0 ;
      if !idle >= 8 then signal_stop t else loop ()
    end
  in
  loop ()

let handle_score t ~model ~target ~deadline_ms =
  let t0 = now () in
  let err code message =
    Metrics.record_error t.metrics ~code ;
    Protocol.error ~code ~message
  in
  match Registry.resolve ~dir:t.cfg.registry model with
  | Error msg -> err "unknown_model" msg
  | Ok entry -> (
    let id = entry.Registry.id in
    match load_model t id with
    | Error msg -> err "unknown_model" msg
    | Ok (_, manifest) -> (
      let d = manifest.Registry.feature_dim in
      let op, validated =
        match target with
        | Protocol.Rows rows ->
          ( "score_rows",
            if Array.exists (fun r -> Array.length r <> d) rows then
              Error
                (Printf.sprintf "every row must have %d features (model %s)" d id)
            else
              Ok
                ( { bk_model = id; bk_dataset = None; bk_where = None },
                  P_rows rows ) )
        | Protocol.Dataset { dataset; ids } ->
          ( "score_ids",
            Ok
              ( { bk_model = id; bk_dataset = Some dataset; bk_where = None },
                P_ids ids ) )
        | Protocol.Dataset_where { dataset; where } ->
          (* the canonical predicate string is the fusion key: equal
             filters batch into one mask + select_rows + score *)
          ( "score_where",
            Ok
              ( { bk_model = id;
                  bk_dataset = Some dataset;
                  bk_where = Some (Pred.to_string where)
                },
                P_where where ) )
      in
      match validated with
      | Error msg -> err "bad_request" msg
      | Ok (key, payload) -> (
        let deadline =
          match
            (deadline_ms, t.cfg.default_deadline_ms)
          with
          | Some ms, _ | None, Some ms -> Some (t0 +. (ms /. 1e3))
          | None, None -> None
        in
        let batcher =
          match t.batcher with Some b -> b | None -> assert false
        in
        let submitted =
          enter_score t ;
          match Batcher.submit batcher ?deadline key payload with
          | r ->
            exit_score t ;
            r
          | exception e ->
            exit_score t ;
            raise e
        in
        match submitted with
        | Ok preds ->
          Metrics.record t.metrics ~op ~seconds:(now () -. t0) ;
          Protocol.ok
            [ ("model", Json.Str id);
              ( "predictions",
                Json.Arr (Array.to_list preds |> List.map (fun x -> Json.Num x))
              )
            ]
        | Error e ->
          (* the batcher already recorded the error code *)
          let message =
            match e with
            | Batcher.Overloaded -> "queue full, request shed"
            | Batcher.Deadline_exceeded -> "deadline passed while queued"
            | Batcher.Expired ->
              "deadline cannot be met within the remaining budget"
            | Batcher.Rejected msg -> msg
          in
          Protocol.error ~code:(Batcher.error_code e) ~message)))

let handle_request t req =
  match req with
  | Protocol.Ping ->
    Metrics.record t.metrics ~op:"ping" ~seconds:0.0 ;
    Protocol.ok [ ("pong", Json.Bool true) ]
  | Protocol.List_models ->
    let t0 = now () in
    let entries = Registry.list ~dir:t.cfg.registry in
    Metrics.record t.metrics ~op:"list" ~seconds:(now () -. t0) ;
    Protocol.ok [ ("models", Json.Arr (List.map manifest_json entries)) ]
  | Protocol.Stats ->
    Metrics.record t.metrics ~op:"stats" ~seconds:0.0 ;
    Protocol.ok [ ("stats", stats t) ]
  | Protocol.Health ->
    Metrics.record t.metrics ~op:"health" ~seconds:0.0 ;
    let open_c = open_circuits t in
    let draining = is_draining t in
    let status =
      if draining then "draining" else if open_c = 0 then "ok" else "degraded"
    in
    Protocol.ok
      [ ("status", Json.Str status);
        ("draining", Json.Bool draining);
        ("open_circuits", Json.Num (float_of_int open_c));
        ( "handler_restarts",
          Json.Num (float_of_int (Metrics.restarts t.metrics)) );
        ("uptime_s", Json.Num (now () -. t.started))
      ]
  | Protocol.Drain _ ->
    (* the shard argument is the router's concern; to a server a drain
       is always about itself *)
    Metrics.record t.metrics ~op:"drain" ~seconds:0.0 ;
    request_drain t ;
    Protocol.ok [ ("draining", Json.Bool true) ]
  | Protocol.Undrain _ ->
    Metrics.record t.metrics ~op:"undrain" ~seconds:0.0 ;
    if t.stopping then
      Protocol.error ~code:"rejected"
        ~message:"drain already completed, server is stopping"
    else begin
      let was = cancel_drain t in
      Protocol.ok [ ("draining", Json.Bool false); ("was_draining", Json.Bool was) ]
    end
  | Protocol.Membership ->
    Metrics.record t.metrics ~op:"membership" ~seconds:0.0 ;
    Analysis.Sync.lock t.drain_m ;
    let draining = t.draining and active = t.active in
    Analysis.Sync.unlock t.drain_m ;
    Protocol.ok
      [ ("role", Json.Str "server");
        ("status", Json.Str (if draining then "draining" else "ok"));
        ("active", Json.Num (float_of_int active));
        ( "pending",
          Json.Num
            (float_of_int
               (match t.batcher with
               | Some b -> Batcher.pending b
               | None -> 0)) )
      ]
  | Protocol.Shutdown ->
    Metrics.record t.metrics ~op:"shutdown" ~seconds:0.0 ;
    signal_stop t ;
    Protocol.ok [ ("stopping", Json.Bool true) ]
  | Protocol.Score { model; target; deadline_ms } -> (
    match t.limiter with
    | None -> handle_score t ~model ~target ~deadline_ms
    | Some lim ->
      if not (Limiter.try_acquire lim) then begin
        Metrics.record_limited t.metrics ;
        Metrics.record_error t.metrics ~code:"overloaded" ;
        Protocol.error ~code:"overloaded"
          ~message:"concurrency limit reached, request shed"
      end
      else begin
        let t0 = now () in
        match handle_score t ~model ~target ~deadline_ms with
        | resp ->
          let ok = Result.is_ok (Protocol.response_result resp) in
          Limiter.release lim ~latency:(now () -. t0) ~ok ;
          resp
        | exception e ->
          Limiter.release lim ~latency:(now () -. t0) ~ok:false ;
          raise e
      end)

let serve_connection t fd =
  let r = reader fd in
  let rec loop () =
    match read_frame t r with
    | Eof -> ()
    | Oversized ->
      (* structured refusal, then hang up: the rest of the buffer is
         the same runaway frame *)
      Metrics.record_error t.metrics ~code:"bad_request" ;
      ignore
        (write_frame fd
           (Protocol.error ~code:"bad_request"
              ~message:
                (Printf.sprintf "frame too large (limit %d bytes)" max_frame)))
    | Frame line ->
      let response =
        match Json.of_string line with
        | Error msg ->
          Metrics.record_error t.metrics ~code:"bad_request" ;
          Protocol.error ~code:"bad_request" ~message:msg
        | Ok j -> (
          match Protocol.request_of_json j with
          | Error msg ->
            Metrics.record_error t.metrics ~code:"bad_request" ;
            Protocol.error ~code:"bad_request" ~message:msg
          | Ok req -> (
            (* a failing handler answers ["internal"], it does not take
               the connection (or its thread) down with it *)
            match handle_request t req with
            | response -> response
            | exception (Fault.Injected _ as e) -> raise e
            | exception e ->
              Metrics.record_error t.metrics ~code:"internal" ;
              Protocol.error ~code:"internal" ~message:(Printexc.to_string e)))
      in
      if write_frame fd response then loop ()
      else begin
        (* peer gone mid-write: account it; the request itself already
           ran, so this is a delivery failure, not a scoring failure *)
        Metrics.record_write_error t.metrics ;
        Metrics.record_error t.metrics ~code:"client_write"
      end
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (* the supervision drill point: a crash here kills the handler
         thread, which the supervisor detects and replaces *)
      Fault.point "server.handler" ;
      loop ())

(* ---- threads ---- *)

let accept_loop t =
  let rec loop () =
    if t.stopping then ()
    else begin
      match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> loop ()
      | _ -> (
        match Endpoint.accept t.listen_fd with
        | fd, _ ->
          Analysis.Sync.lock t.conn_m ;
          Queue.push fd t.conns ;
          Analysis.Sync.signal t.conn_cv ;
          Analysis.Sync.unlock t.conn_m ;
          loop ()
        | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
        | exception Unix.Unix_error _ -> loop ()
        (* injected accept fault: the pending connection stays in the
           kernel backlog and is retried on the next select round — a
           delayed accept, never a lost connection *)
        | exception Fault.Injected _ -> loop ())
      | exception Unix.Unix_error _ -> ()
    end
  in
  loop ()

let handler_loop t =
  let rec loop () =
    Analysis.Sync.lock t.conn_m ;
    while Queue.is_empty t.conns && not t.stopping do
      Analysis.Sync.wait t.conn_cv t.conn_m
    done ;
    let fd = if Queue.is_empty t.conns then None else Some (Queue.pop t.conns) in
    Analysis.Sync.unlock t.conn_m ;
    match fd with
    | Some fd ->
      serve_connection t fd ;
      loop ()
    | None -> () (* stopping and drained *)
  in
  loop ()

(* A handler slot: run the loop; if it dies (anything escaping
   [serve_connection] — in practice an injected crash or a genuinely
   unexpected bug), flag the slot for the supervisor and exit the
   thread. The connection's fd was already closed by the Fun.protect
   in [serve_connection]. *)
let handler_slot t i =
  try handler_loop t
  with _ ->
    Analysis.Sync.lock t.sup_m ;
    t.crashed.(i) <- true ;
    Analysis.Sync.unlock t.sup_m

(* The supervisor: poll for crashed slots, join the dead thread,
   respawn it, and count the restart. Polling (20ms) keeps the common
   path free of any coordination; a crash only delays new connections
   on that slot by at most one poll interval. *)
let supervisor t =
  let rec loop () =
    Thread.delay 0.02 ;
    Analysis.Sync.lock t.sup_m ;
    let dead = ref [] in
    Array.iteri
      (fun i c ->
        if c then begin
          t.crashed.(i) <- false ;
          dead := i :: !dead
        end)
      t.crashed ;
    Analysis.Sync.unlock t.sup_m ;
    List.iter
      (fun i ->
        Thread.join t.slots.(i) ;
        Metrics.record_restart t.metrics ;
        t.slots.(i) <- Thread.create (handler_slot t) i)
      !dead ;
    if not t.stopping then loop ()
  in
  loop ()

(* ---- lifecycle ---- *)

let start cfg =
  if cfg.handlers < 1 then invalid_arg "Server.start: handlers < 1" ;
  if cfg.cache_capacity < 1 then invalid_arg "Server.start: cache_capacity < 1" ;
  (* a dead peer must surface as a write error, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()) ;
  (* quarantine crash litter before anything reads the registry *)
  let recovered = List.length (Registry.recover ~dir:cfg.registry) in
  let ep = Endpoint.of_string cfg.socket in
  let listen_fd = Endpoint.listen ep in
  let t =
    { cfg;
      metrics = Metrics.create ();
      listen_fd;
      bound = Endpoint.bound_endpoint ep listen_fd;
      conns = Queue.create ();
      conn_m = Analysis.Sync.create ~name:"serve.server.conns" ();
      conn_cv = Analysis.Sync.condition ();
      models = Hashtbl.create 8;
      model_m = Analysis.Sync.create ~name:"serve.server.models" ();
      datasets =
        Dataset_cache.create ~capacity:cfg.cache_capacity ~load:(fun path ->
            let tn = Io.load ~dir:path in
            (tn, Registry.schema_hash tn));
      batcher = None;
      breakers = Hashtbl.create 8;
      breaker_m = Analysis.Sync.create ~name:"serve.server.breakers" ();
      slots = [||];
      crashed = Array.make cfg.handlers false;
      sup_m = Analysis.Sync.create ~name:"serve.server.sup" ();
      recovered;
      limiter =
        Option.map
          (fun ms -> Limiter.create ~target:(ms /. 1e3) ())
          cfg.limiter_target_ms;
      drain_m = Analysis.Sync.create ~name:"serve.server.drain" ();
      draining = false;
      active = 0;
      stop_m = Analysis.Sync.create ~name:"serve.server.stop" ();
      stop_cv = Analysis.Sync.condition ();
      stopping = false;
      threads = [];
      started = now ()
    }
  in
  t.batcher <-
    Some
      (Batcher.create ~max_batch:cfg.max_batch ~max_wait:cfg.max_wait
         ~queue_bound:cfg.queue_bound ~metrics:t.metrics ~size:payload_rows
         ~exec:(exec_batch t) ()) ;
  let accept_t = Thread.create accept_loop t in
  t.slots <- Array.init cfg.handlers (fun i -> Thread.create (handler_slot t) i) ;
  let sup_t = Thread.create supervisor t in
  let drain_t = Thread.create drain_watcher t in
  t.threads <- [ accept_t; sup_t; drain_t ] ;
  t

let request_stop t = signal_stop t

let wait t =
  Analysis.Sync.lock t.stop_m ;
  while not t.stopping do
    Analysis.Sync.wait t.stop_cv t.stop_m
  done ;
  Analysis.Sync.unlock t.stop_m

let metrics t = t.metrics
let endpoint t = t.bound

let stop t =
  request_stop t ;
  (* accept + supervisor first: once the supervisor has exited the
     slots array is stable and every slot can be joined *)
  List.iter Thread.join t.threads ;
  t.threads <- [] ;
  Array.iter Thread.join t.slots ;
  t.slots <- [||] ;
  (* reject queued-but-unserved connections cleanly *)
  Queue.iter
    (fun fd ->
      ignore
        (write_frame fd
           (Protocol.error ~code:"rejected" ~message:"server shutting down")) ;
      try Unix.close fd with Unix.Unix_error _ -> ())
    t.conns ;
  Queue.clear t.conns ;
  (match t.batcher with Some b -> Batcher.stop b | None -> ()) ;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ()) ;
  Endpoint.cleanup t.bound

let run cfg =
  let t = start cfg in
  let stop_signal _ = request_stop t in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle stop_signal) in
  let old_term =
    (* --drain-on sigterm: the orchestrator's TERM starts a graceful
       drain (health answers "draining", the queue finishes, then the
       server stops on its own); INT still stops immediately *)
    if cfg.drain_on_term then
      Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_drain t))
    else Sys.signal Sys.sigterm (Sys.Signal_handle stop_signal)
  in
  Fmt.pr "morpheus serve: registry %s, listening on %s (%d handlers, batch ≤ %d / %gms)@."
    cfg.registry
    (Endpoint.to_string t.bound)
    cfg.handlers cfg.max_batch (1e3 *. cfg.max_wait) ;
  if t.recovered > 0 then
    Fmt.pr "morpheus serve: quarantined %d crash-litter entries from the registry@."
      t.recovered ;
  wait t ;
  stop t ;
  Sys.set_signal Sys.sigint old_int ;
  Sys.set_signal Sys.sigterm old_term ;
  Fmt.pr "@.-- serving metrics --@.%s@." (Metrics.summary t.metrics)
