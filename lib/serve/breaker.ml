(* Consecutive-failure circuit breaker. State is derived: [opened_at =
   None] is closed; [Some at] is open until [at + cooldown], half-open
   after. The half-open single-probe gate is the [probing] flag: the
   first [allow] after the cooldown claims it, every other caller keeps
   getting [false] until the probe reports success or failure.

   Cooldowns carry deterministic seeded jitter: when one shard death
   trips N breakers at once, identical cooldowns would wake all N
   probes in lockstep and hammer the recovering shard with a
   synchronized thundering herd. Each open stretches its cooldown by a
   pseudo-random fraction of [jitter], derived purely from (seed, open
   count) so runs replay bit-identically. *)

type state = Closed | Open | Half_open

type t = {
  m : Analysis.Sync.t;
  threshold : int;
  cooldown : float;
  jitter : float;  (* fraction of cooldown, 0 disables *)
  seed : int;
  now : unit -> float;
  mutable failures : int;  (* consecutive *)
  mutable opened_at : float option;
  mutable cur_cooldown : float;  (* this open's jittered cooldown *)
  mutable probing : bool;
  mutable opens : int;
}

(* splitmix64-style finalizer: decorrelates consecutive (seed, n). *)
let mix64 x =
  let x = Int64.of_int x in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94d049bb133111ebL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let u01 seed n =
  let h = mix64 ((seed * 0x9e3779b9) lxor (n * 0x85ebca6b)) in
  let bits = Int64.to_int (Int64.logand h 0x1FFFFFFFFFFFFFL) in
  float_of_int bits /. float_of_int 0x20000000000000

let create ?(threshold = 5) ?(cooldown = 1.0) ?(jitter = 0.0) ?(seed = 0)
    ?(now = Clock.wall) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1" ;
  if cooldown < 0.0 then invalid_arg "Breaker.create: negative cooldown" ;
  if jitter < 0.0 then invalid_arg "Breaker.create: negative jitter" ;
  { m = Analysis.Sync.create ~name:"serve.breaker" ();
    threshold;
    cooldown;
    jitter;
    seed;
    now;
    failures = 0;
    opened_at = None;
    cur_cooldown = cooldown;
    probing = false;
    opens = 0
  }

let locked t f =
  Analysis.Sync.lock t.m ;
  Fun.protect ~finally:(fun () -> Analysis.Sync.unlock t.m) f

let open_now t =
  t.opened_at <- Some (t.now ()) ;
  t.probing <- false ;
  t.opens <- t.opens + 1 ;
  t.cur_cooldown <- t.cooldown *. (1.0 +. (t.jitter *. u01 t.seed t.opens))

let state t =
  locked t (fun () ->
      match t.opened_at with
      | None -> Closed
      | Some at ->
        if t.now () -. at >= t.cur_cooldown then Half_open else Open)

let allow t =
  locked t (fun () ->
      match t.opened_at with
      | None -> true
      | Some at ->
        if t.now () -. at >= t.cur_cooldown && not t.probing then begin
          t.probing <- true ;
          true
        end
        else false)

let success t =
  locked t (fun () ->
      t.failures <- 0 ;
      t.opened_at <- None ;
      t.probing <- false)

let failure t =
  locked t (fun () ->
      match t.opened_at with
      | Some _ ->
        (* a probe failed (or a straggler raced the trip): re-open with
           a fresh cooldown *)
        open_now t
      | None ->
        t.failures <- t.failures + 1 ;
        if t.failures >= t.threshold then open_now t)

let opens t = locked t (fun () -> t.opens)
