(* Consecutive-failure circuit breaker. State is derived: [opened_at =
   None] is closed; [Some at] is open until [at + cooldown], half-open
   after. The half-open single-probe gate is the [probing] flag: the
   first [allow] after the cooldown claims it, every other caller keeps
   getting [false] until the probe reports success or failure. *)

type state = Closed | Open | Half_open

type t = {
  m : Analysis.Sync.t;
  threshold : int;
  cooldown : float;
  now : unit -> float;
  mutable failures : int;  (* consecutive *)
  mutable opened_at : float option;
  mutable probing : bool;
  mutable opens : int;
}

let create ?(threshold = 5) ?(cooldown = 1.0) ?(now = Clock.wall) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1" ;
  if cooldown < 0.0 then invalid_arg "Breaker.create: negative cooldown" ;
  { m = Analysis.Sync.create ~name:"serve.breaker" ();
    threshold;
    cooldown;
    now;
    failures = 0;
    opened_at = None;
    probing = false;
    opens = 0
  }

let locked t f =
  Analysis.Sync.lock t.m ;
  Fun.protect ~finally:(fun () -> Analysis.Sync.unlock t.m) f

let state t =
  locked t (fun () ->
      match t.opened_at with
      | None -> Closed
      | Some at -> if t.now () -. at >= t.cooldown then Half_open else Open)

let allow t =
  locked t (fun () ->
      match t.opened_at with
      | None -> true
      | Some at ->
        if t.now () -. at >= t.cooldown && not t.probing then begin
          t.probing <- true ;
          true
        end
        else false)

let success t =
  locked t (fun () ->
      t.failures <- 0 ;
      t.opened_at <- None ;
      t.probing <- false)

let failure t =
  locked t (fun () ->
      match t.opened_at with
      | Some _ ->
        (* a probe failed (or a straggler raced the trip): re-open with
           a fresh cooldown *)
        t.opened_at <- Some (t.now ()) ;
        t.probing <- false ;
        t.opens <- t.opens + 1
      | None ->
        t.failures <- t.failures + 1 ;
        if t.failures >= t.threshold then begin
          t.opened_at <- Some (t.now ()) ;
          t.probing <- false ;
          t.opens <- t.opens + 1
        end)

let opens t = locked t (fun () -> t.opens)
