(** A small thread-safe LRU cache of loaded values keyed by string —
    the server's cache of normalized datasets ({!Morpheus.Io.load} is
    many orders of magnitude slower than a factorized scoring pass, so
    repeated requests against the same dataset must not reload it).
    Generic so tests can cache counters instead of datasets. *)

type 'a t

val create : capacity:int -> load:(string -> 'a) -> 'a t
(** [capacity] ≥ 1; [load] fills misses (its exceptions propagate out
    of {!get} and nothing is cached). *)

val get : 'a t -> string -> 'a
(** Hit: O(capacity), promotes the key to most-recently-used. Miss:
    runs [load], inserts, evicts the least-recently-used entry when
    over capacity. *)

val mem : 'a t -> string -> bool
(** Without promoting. *)

val keys : 'a t -> string list
(** Most-recently-used first. *)

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
val length : 'a t -> int
val capacity : 'a t -> int

val clear : 'a t -> unit
