(* Command-line front end for the Morpheus library:

     morpheus generate --dir data --ns 100000 --nr 5000 --ds 5 --dr 20
     morpheus info     --dir data --fk fk --pk pk
     morpheus train    --dir data --fk fk --pk pk --target y \
                       --algorithm logreg --path both --iters 10

   [generate] writes a synthetic PK-FK pair of CSVs; [info] builds the
   normalized matrix and reports its statistics plus the §3.7 decision;
   [train] runs one of the four ML algorithms over the factorized and/or
   materialized execution path. *)

open La
open Relational
open Morpheus
open Cmdliner

(* ---- shared args ---- *)

let dir_arg =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
         ~doc:"Directory holding (or receiving) S.csv and R.csv.")

let fk_arg =
  Arg.(value & opt string "fk" & info [ "fk" ] ~doc:"Foreign-key column in S.csv.")

let pk_arg =
  Arg.(value & opt string "pk" & info [ "pk" ] ~doc:"Primary-key column in R.csv.")

let target_arg =
  Arg.(value & opt string "y" & info [ "target" ] ~doc:"Target column in S.csv.")

let nominal_arg =
  Arg.(value & opt (list string) [] & info [ "nominal" ]
         ~doc:"Comma-separated nominal (one-hot encoded) columns.")

let sparse_arg =
  Arg.(value & flag & info [ "sparse" ] ~doc:"Use sparse feature matrices.")

let threads_arg =
  Arg.(value & opt (some int) None & info [ "threads"; "j" ] ~docv:"N"
         ~doc:"Domains for the LA execution engine (default: \
               $(b,MORPHEUS_THREADS), else 1). 1 selects the sequential \
               backend; results are bitwise-identical either way.")

(* Install the requested backend as the process default, so every kernel
   invoked below (including through the Data_matrix functors, which have
   no [?exec] parameter) picks it up. *)
let apply_threads = function
  | None -> ()
  | Some n ->
    if n < 1 then begin
      Fmt.epr "morpheus: --threads must be >= 1@." ;
      exit 2
    end ;
    Exec.set_default (Exec.make n)

(* ---- generate ---- *)

let generate dir ns nr ds dr seed =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 ;
  let rng = Rng.of_int seed in
  let float_cols prefix n =
    List.init n (fun i ->
        Schema.column ~name:(Printf.sprintf "%s%d" prefix i)
          ~role:Schema.Numeric_feature)
  in
  let s_schema =
    Schema.create ~table_name:"S"
      (Schema.column ~name:"y" ~role:Schema.Target
       :: Schema.column ~name:"fk" ~role:(Schema.Foreign_key "R")
       :: float_cols "xs" ds)
  in
  let r_schema =
    Schema.create ~table_name:"R"
      (Schema.column ~name:"pk" ~role:Schema.Primary_key :: float_cols "xr" dr)
  in
  let s_rows =
    List.init ns (fun _ ->
        Array.of_list
          (Value.Float (if Rng.bool rng then 1.0 else -1.0)
           :: Value.Int (Rng.int rng nr)
           :: List.init ds (fun _ -> Value.Float (Rng.gaussian rng))))
  in
  let r_rows =
    List.init nr (fun i ->
        Array.of_list
          (Value.Int i :: List.init dr (fun _ -> Value.Float (Rng.gaussian rng))))
  in
  Csv.write_table (Filename.concat dir "S.csv") (Table.of_rows s_schema s_rows) ;
  Csv.write_table (Filename.concat dir "R.csv") (Table.of_rows r_schema r_rows) ;
  Fmt.pr "wrote %s/S.csv (%d rows) and %s/R.csv (%d rows)@." dir ns dir nr

let generate_cmd =
  let ns = Arg.(value & opt int 100_000 & info [ "ns" ] ~doc:"Rows of S.") in
  let nr = Arg.(value & opt int 5_000 & info [ "nr" ] ~doc:"Rows of R.") in
  let ds = Arg.(value & opt int 5 & info [ "ds" ] ~doc:"Features of S.") in
  let dr = Arg.(value & opt int 20 & info [ "dr" ] ~doc:"Features of R.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic PK-FK pair of base-table CSVs.")
    Term.(const generate $ dir_arg $ ns $ nr $ ds $ dr $ seed)

(* ---- loading ---- *)

let load ~dir ~fk ~pk ~target ~nominal ~sparse =
  let role_s n =
    if n = fk then Schema.Foreign_key "R"
    else if n = target then Schema.Target
    else if List.mem n nominal then Schema.Nominal_feature
    else Schema.Numeric_feature
  in
  let role_r n =
    if n = pk then Schema.Primary_key
    else if List.mem n nominal then Schema.Nominal_feature
    else Schema.Numeric_feature
  in
  Builder.pkfk_of_csv ~sparse
    ~s_path:(Filename.concat dir "S.csv")
    ~s_roles:role_s ~fk
    ~r_path:(Filename.concat dir "R.csv")
    ~r_roles:role_r ~pk ()

(* ---- info ---- *)

let show_info dir fk pk target nominal sparse threads =
  apply_threads threads ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let n, d = Normalized.dims t in
  Fmt.pr "normalized matrix : %d x %d@." n d ;
  Fmt.pr "execution backend : %s@." (Exec.name (Exec.default ())) ;
  Fmt.pr "stored scalars    : %d (materialized T: %d)@."
    (Normalized.storage_size t) (n * d) ;
  Fmt.pr "redundancy ratio  : %.2f@." (Normalized.redundancy_ratio t) ;
  Fmt.pr "tuple ratio       : %.2f@." (Normalized.tuple_ratio t) ;
  Fmt.pr "feature ratio     : %.2f@." (Normalized.feature_ratio t) ;
  Fmt.pr "decision rule     : %s@."
    (Decision.to_string (Decision.heuristic t))

let info_cmd =
  Cmd.v
    (Cmd.info "info" ~doc:"Report normalized-matrix statistics and the decision rule.")
    Term.(const show_info $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg)

(* ---- train ---- *)

type path = Factorized_path | Materialized_path | Both

let path_conv =
  Arg.enum [ ("factorized", Factorized_path); ("materialized", Materialized_path); ("both", Both) ]

type algorithm = Logreg_a | Linreg_a | Kmeans_a | Gnmf_a

let algo_conv =
  Arg.enum
    [ ("logreg", Logreg_a); ("linreg", Linreg_a); ("kmeans", Kmeans_a); ("gnmf", Gnmf_a) ]

let train dir fk pk target nominal sparse threads algo path iters alpha k rank =
  apply_threads threads ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let y = Option.get ds.Builder.target in
  let module F = Ml_algs.Algorithms.Factorized in
  let module M = Ml_algs.Algorithms.Materialized in
  let run_path name run =
    let result, dt = Workload.Timing.time run in
    Fmt.pr "%-13s %a@." name Workload.Timing.pp_seconds dt ;
    result
  in
  let fact () : Dense.t =
    match algo with
    | Logreg_a -> (F.Logreg.train ~alpha ~iters t y).F.Logreg.w
    | Linreg_a -> F.Linreg.train_gd ~alpha ~iters t y
    | Kmeans_a -> (F.Kmeans.train ~iters ~k t).F.Kmeans.centroids
    | Gnmf_a -> (F.Gnmf.train ~iters ~rank t).F.Gnmf.h
  in
  let mat () : Dense.t =
    let m = Materialize.to_regular t in
    match algo with
    | Logreg_a -> (M.Logreg.train ~alpha ~iters m y).M.Logreg.w
    | Linreg_a -> M.Linreg.train_gd ~alpha ~iters m y
    | Kmeans_a -> (M.Kmeans.train ~iters ~k m).M.Kmeans.centroids
    | Gnmf_a -> (M.Gnmf.train ~iters ~rank m).M.Gnmf.h
  in
  (match path with
  | Factorized_path -> ignore (run_path "factorized" fact)
  | Materialized_path -> ignore (run_path "materialized" mat)
  | Both ->
    let wf = run_path "factorized" fact in
    let wm = run_path "materialized" mat in
    Fmt.pr "max |difference| between paths: %.3e@." (Dense.max_abs_diff wf wm)) ;
  Fmt.pr "done.@."

let train_cmd =
  let algo =
    Arg.(value & opt algo_conv Logreg_a & info [ "algorithm"; "a" ]
           ~doc:"One of logreg, linreg, kmeans, gnmf.")
  in
  let path =
    Arg.(value & opt path_conv Both & info [ "path" ]
           ~doc:"Execution path: factorized, materialized, or both.")
  in
  let iters = Arg.(value & opt int 10 & info [ "iters" ] ~doc:"Iterations.") in
  let alpha = Arg.(value & opt float 1e-4 & info [ "alpha" ] ~doc:"Step size.") in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"K-Means centroids.") in
  let rank = Arg.(value & opt int 5 & info [ "rank" ] ~doc:"GNMF rank.") in
  Cmd.v
    (Cmd.info "train" ~doc:"Train an ML algorithm over the normalized data.")
    Term.(const train $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg $ algo $ path $ iters $ alpha $ k $ rank)

(* ---- cv: ridge-lambda selection by k-fold cross-validation ---- *)

let cv dir fk pk target nominal sparse threads k lambdas =
  apply_threads threads ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let y = Option.get ds.Builder.target in
  let (best, best_score, scored), dt =
    Workload.Timing.time (fun () ->
        Ml_algs.Model_selection.select_ridge_lambda ~k ~lambdas t y)
  in
  List.iter
    (fun (lambda, score) -> Fmt.pr "lambda=%-10g mean val MSE %.6f@." lambda score)
    scored ;
  Fmt.pr "best: lambda=%g (MSE %.6f), %d-fold CV in %a@." best best_score k
    Workload.Timing.pp_seconds dt

let cv_cmd =
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of folds.") in
  let lambdas =
    Arg.(value & opt (list float) [ 0.01; 0.1; 1.0; 10.0; 100.0 ]
           & info [ "lambdas" ] ~doc:"Ridge penalties to evaluate.")
  in
  Cmd.v
    (Cmd.info "cv" ~doc:"Select a ridge penalty by factorized k-fold cross-validation.")
    Term.(const cv $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg $ k $ lambdas)

(* ---- pca: factorized principal component analysis ---- *)

let pca dir fk pk target nominal sparse threads k =
  apply_threads threads ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let p, dt = Workload.Timing.time (fun () -> Morpheus.Spectral.pca ~k t) in
  Fmt.pr "PCA (k=%d) over the normalized matrix in %a@." k
    Workload.Timing.pp_seconds dt ;
  Array.iteri
    (fun i v -> Fmt.pr "component %d: variance %.6f@." i v)
    p.Morpheus.Spectral.explained_variance ;
  Fmt.pr "explained variance ratio: %.4f@."
    (Morpheus.Spectral.explained_ratio t p)

let pca_cmd =
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of components.") in
  Cmd.v
    (Cmd.info "pca" ~doc:"Run factorized PCA over the normalized data.")
    Term.(const pca $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg $ k)

(* ---- explain: show the rewrite plan and cost estimates ---- *)

let explain_op_conv =
  Arg.enum
    [ ("scalar", Morpheus.Explain.Scalar_op);
      ("rowsums", Morpheus.Explain.Row_sums);
      ("colsums", Morpheus.Explain.Col_sums);
      ("sum", Morpheus.Explain.Sum);
      ("lmm", Morpheus.Explain.Lmm 1);
      ("rmm", Morpheus.Explain.Rmm 1);
      ("crossprod", Morpheus.Explain.Crossprod);
      ("ginv", Morpheus.Explain.Ginv) ]

let explain dir fk pk target nominal sparse op =
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  print_endline (Morpheus.Explain.describe t) ;
  print_newline () ;
  print_endline (Morpheus.Explain.explain t op)

let explain_cmd =
  let op =
    Arg.(value & opt explain_op_conv (Morpheus.Explain.Lmm 1)
           & info [ "op" ]
               ~doc:"Operator: scalar, rowsums, colsums, sum, lmm, rmm, crossprod, ginv.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the rewrite plan, cost estimates, and decision for an operator.")
    Term.(const explain $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ op)

(* ---- check: static plan checker over plan files ---- *)

(* Exit codes: 0 all checks clean (warnings allowed unless --strict),
   1 diagnostics with error severity (or warnings under --strict),
   2 unreadable/unparsable plan. *)
let check_plans expr_opt strict files =
  if expr_opt = None && files = [] then begin
    Fmt.epr "morpheus check: nothing to do (give plan FILEs and/or --expr)@." ;
    exit 2
  end ;
  let failed = ref false in
  let run_report name ~env e =
    let report = Morpheus.Check.analyze_abstract ~env e in
    print_string (Morpheus.Check.report_to_string ~name report) ;
    print_newline () ;
    if not (Morpheus.Check.is_ok report) then failed := true ;
    if strict && Morpheus.Check.warnings report <> [] then failed := true
  in
  List.iter
    (fun file ->
      match Morpheus.Plan.parse_file file with
      | Error msg ->
        Fmt.epr "%s: %s@." file msg ;
        exit 2
      | Ok plan ->
        let env = Morpheus.Plan.env plan in
        (match Morpheus.Plan.checks plan with
        | [] -> Fmt.epr "%s: no check statements@." file
        | checks ->
          List.iter
            (fun (name, e) ->
              run_report (Printf.sprintf "%s: %s" file name) ~env e)
            checks))
    files ;
  (match expr_opt with
  | None -> ()
  | Some src -> (
    match Morpheus.Plan.parse_expr src with
    | Error msg ->
      Fmt.epr "--expr: %s@." msg ;
      exit 2
    | Ok e -> run_report src ~env:[] e)) ;
  if !failed then exit 1

let check_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Plan files to check (see docs/CHECKER.md for the syntax).")
  in
  let expr =
    Arg.(value & opt (some string) None & info [ "expr"; "e" ] ~docv:"EXPR"
           ~doc:"Check a single expression with no declared operands.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Treat warnings (W001-W003) as errors.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statically check LA plans: shapes, rewrite preconditions, \
             per-node cost estimates, and structured diagnostics.")
    Term.(const check_plans $ expr $ strict $ files)

let () =
  let doc = "factorized linear algebra over normalized data (Morpheus)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "morpheus" ~version:"1.0.0" ~doc)
          [ generate_cmd; info_cmd; train_cmd; cv_cmd; pca_cmd; explain_cmd;
            check_cmd ]))
