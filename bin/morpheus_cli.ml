(* Command-line front end for the Morpheus library:

     morpheus generate --dir data --ns 100000 --nr 5000 --ds 5 --dr 20
     morpheus info     --dir data --fk fk --pk pk
     morpheus train    --dir data --fk fk --pk pk --target y \
                       --algorithm logreg --path both --iters 10

   [generate] writes a synthetic PK-FK pair of CSVs; [info] builds the
   normalized matrix and reports its statistics plus the §3.7 decision;
   [train] runs one of the four ML algorithms over the factorized and/or
   materialized execution path. *)

open La
open Relational
open Morpheus
open Cmdliner

let version = "1.1.0"

let cmd_info name ~doc = Cmd.info name ~version ~doc

(* Runtime (as opposed to usage) failures exit 1, uniformly; usage
   errors exit 2 (enforced here and via [Cmd.eval ~term_err]). *)
let with_runtime_errors f =
  try f () with
  | Io.Corrupt msg ->
    Fmt.epr "morpheus: corrupt file: %s@." msg ;
    exit 1
  | Sys_error msg ->
    Fmt.epr "morpheus: %s@." msg ;
    exit 1
  | Unix.Unix_error (e, fn, arg) ->
    Fmt.epr "morpheus: %s%s: %s@." fn
      (if arg = "" then "" else " " ^ arg)
      (Unix.error_message e) ;
    exit 1
  | Invalid_argument msg | Failure msg ->
    Fmt.epr "morpheus: %s@." msg ;
    exit 1
  | Validate.Numeric_error i ->
    Fmt.epr "morpheus: %s@." (Validate.message i) ;
    exit 1
  | Fault.Injected p ->
    Fmt.epr "morpheus: injected fault at %s@." p ;
    exit 1

(* ---- shared args ---- *)

let dir_arg =
  Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
         ~doc:"Directory holding (or receiving) S.csv and R.csv.")

let fk_arg =
  Arg.(value & opt string "fk" & info [ "fk" ] ~doc:"Foreign-key column in S.csv.")

let pk_arg =
  Arg.(value & opt string "pk" & info [ "pk" ] ~doc:"Primary-key column in R.csv.")

let target_arg =
  Arg.(value & opt string "y" & info [ "target" ] ~doc:"Target column in S.csv.")

let nominal_arg =
  Arg.(value & opt (list string) [] & info [ "nominal" ]
         ~doc:"Comma-separated nominal (one-hot encoded) columns.")

let sparse_arg =
  Arg.(value & flag & info [ "sparse" ] ~doc:"Use sparse feature matrices.")

let threads_arg =
  Arg.(value & opt (some int) None & info [ "threads"; "j" ] ~docv:"N"
         ~doc:"Domains for the LA execution engine (default: \
               $(b,MORPHEUS_THREADS), else 1). 1 selects the sequential \
               backend; results are bitwise-identical either way.")

(* Install the requested backend as the process default, so every kernel
   invoked below (including through the Data_matrix functors, which have
   no [?exec] parameter) picks it up. *)
let apply_threads = function
  | None -> ()
  | Some n ->
    if n < 1 then begin
      Fmt.epr "morpheus: --threads must be >= 1@." ;
      exit 2
    end ;
    Exec.set_default (Exec.make n)

(* ---- generate ---- *)

let generate dir ns nr ds dr seed =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755 ;
  let rng = Rng.of_int seed in
  let float_cols prefix n =
    List.init n (fun i ->
        Schema.column ~name:(Printf.sprintf "%s%d" prefix i)
          ~role:Schema.Numeric_feature)
  in
  let s_schema =
    Schema.create ~table_name:"S"
      (Schema.column ~name:"y" ~role:Schema.Target
       :: Schema.column ~name:"fk" ~role:(Schema.Foreign_key "R")
       :: float_cols "xs" ds)
  in
  let r_schema =
    Schema.create ~table_name:"R"
      (Schema.column ~name:"pk" ~role:Schema.Primary_key :: float_cols "xr" dr)
  in
  let s_rows =
    List.init ns (fun _ ->
        Array.of_list
          (Value.Float (if Rng.bool rng then 1.0 else -1.0)
           :: Value.Int (Rng.int rng nr)
           :: List.init ds (fun _ -> Value.Float (Rng.gaussian rng))))
  in
  let r_rows =
    List.init nr (fun i ->
        Array.of_list
          (Value.Int i :: List.init dr (fun _ -> Value.Float (Rng.gaussian rng))))
  in
  Csv.write_table (Filename.concat dir "S.csv") (Table.of_rows s_schema s_rows) ;
  Csv.write_table (Filename.concat dir "R.csv") (Table.of_rows r_schema r_rows) ;
  Fmt.pr "wrote %s/S.csv (%d rows) and %s/R.csv (%d rows)@." dir ns dir nr

let generate_cmd =
  let ns = Arg.(value & opt int 100_000 & info [ "ns" ] ~doc:"Rows of S.") in
  let nr = Arg.(value & opt int 5_000 & info [ "nr" ] ~doc:"Rows of R.") in
  let ds = Arg.(value & opt int 5 & info [ "ds" ] ~doc:"Features of S.") in
  let dr = Arg.(value & opt int 20 & info [ "dr" ] ~doc:"Features of R.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  Cmd.v
    (cmd_info "generate" ~doc:"Generate a synthetic PK-FK pair of base-table CSVs.")
    Term.(const generate $ dir_arg $ ns $ nr $ ds $ dr $ seed)

(* ---- loading ---- *)

let load ~dir ~fk ~pk ~target ~nominal ~sparse =
  let role_s n =
    if n = fk then Schema.Foreign_key "R"
    else if n = target then Schema.Target
    else if List.mem n nominal then Schema.Nominal_feature
    else Schema.Numeric_feature
  in
  let role_r n =
    if n = pk then Schema.Primary_key
    else if List.mem n nominal then Schema.Nominal_feature
    else Schema.Numeric_feature
  in
  Builder.pkfk_of_csv ~sparse
    ~s_path:(Filename.concat dir "S.csv")
    ~s_roles:role_s ~fk
    ~r_path:(Filename.concat dir "R.csv")
    ~r_roles:role_r ~pk ()

(* ---- info ---- *)

let show_info dir fk pk target nominal sparse threads =
  apply_threads threads ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let n, d = Normalized.dims t in
  Fmt.pr "normalized matrix : %d x %d@." n d ;
  Fmt.pr "execution backend : %s@." (Exec.name (Exec.default ())) ;
  Fmt.pr "stored scalars    : %d (materialized T: %d)@."
    (Normalized.storage_size t) (n * d) ;
  Fmt.pr "redundancy ratio  : %.2f@." (Normalized.redundancy_ratio t) ;
  Fmt.pr "tuple ratio       : %.2f@." (Normalized.tuple_ratio t) ;
  Fmt.pr "feature ratio     : %.2f@." (Normalized.feature_ratio t) ;
  Fmt.pr "decision rule     : %s@."
    (Decision.to_string (Decision.heuristic t))

let info_cmd =
  Cmd.v
    (cmd_info "info" ~doc:"Report normalized-matrix statistics and the decision rule.")
    Term.(const show_info $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg)

(* ---- train ---- *)

type path = Factorized_path | Materialized_path | Both

let path_conv =
  Arg.enum [ ("factorized", Factorized_path); ("materialized", Materialized_path); ("both", Both) ]

type algorithm = Logreg_a | Linreg_a | Kmeans_a | Gnmf_a

let algo_conv =
  Arg.enum
    [ ("logreg", Logreg_a); ("linreg", Linreg_a); ("kmeans", Kmeans_a); ("gnmf", Gnmf_a) ]

let algo_name = function
  | Logreg_a -> "logreg"
  | Linreg_a -> "linreg"
  | Kmeans_a -> "kmeans"
  | Gnmf_a -> "gnmf"

let train dir fk pk target nominal sparse threads algo path iters alpha k rank
    save registry checkpoint every resume =
  apply_threads threads ;
  if save <> None && registry = None then begin
    Fmt.epr "morpheus train: --save requires --registry@." ;
    exit 2
  end ;
  if save <> None && path = Materialized_path then begin
    Fmt.epr "morpheus train: --save needs the factorized path (use --path \
             factorized or both)@." ;
    exit 2
  end ;
  if save <> None && algo = Gnmf_a then begin
    Fmt.epr "morpheus train: gnmf has no servable artifact to save@." ;
    exit 2
  end ;
  if resume && checkpoint = None then begin
    Fmt.epr "morpheus train: --resume requires --checkpoint@." ;
    exit 2
  end ;
  if checkpoint <> None && path <> Factorized_path then begin
    Fmt.epr "morpheus train: --checkpoint needs --path factorized (snapshots \
             describe one training run, not two)@." ;
    exit 2
  end ;
  if every < 1 then begin
    Fmt.epr "morpheus train: --checkpoint-every must be >= 1@." ;
    exit 2
  end ;
  with_runtime_errors @@ fun () ->
  let module Ck = Ml_algs.Checkpoint in
  (* a missing checkpoint under --resume starts fresh, so the same
     command line works for the first attempt and every rerun after a
     crash; a corrupt or mismatched one refuses loudly *)
  let resumed =
    match checkpoint with
    | Some cpath when resume && Ck.exists ~path:cpath -> (
      match Ck.load ~path:cpath with
      | Error msg ->
        Fmt.epr "morpheus train: cannot resume from %s: %s@." cpath msg ;
        exit 1
      | Ok st ->
        if st.Ck.algorithm <> algo_name algo then begin
          Fmt.epr
            "morpheus train: checkpoint %s holds a %s run, not %s@." cpath
            st.Ck.algorithm (algo_name algo) ;
          exit 1
        end ;
        Some st)
    | _ -> None
  in
  let start =
    match resumed with Some st -> min st.Ck.completed iters | None -> 0
  in
  (match resumed with
  | Some _ ->
    Fmt.pr "resuming from %s: %d/%d iterations done@."
      (Option.get checkpoint) start iters
  | None -> ()) ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let y = Option.get ds.Builder.target in
  let module F = Ml_algs.Algorithms.Factorized in
  let module M = Ml_algs.Algorithms.Materialized in
  let run_path name run =
    let result, dt = Workload.Timing.time run in
    Fmt.pr "%-13s %a@." name Workload.Timing.pp_seconds dt ;
    result
  in
  (* Checkpoint hook: [i] is 1-based within the (possibly resumed) run,
     so [start + i] is the absolute iteration count the snapshot
     records. The final iteration always snapshots, whatever [every]. *)
  let on_iter_for mats =
    Option.map
      (fun cpath i live ->
        let done_ = start + i in
        if done_ mod every = 0 || done_ = iters then
          Ck.save ~path:cpath
            { Ck.algorithm = algo_name algo;
              completed = done_;
              total = iters;
              mats = mats live;
              scalars = [ ("alpha", alpha) ]
            })
      checkpoint
  in
  let remaining = iters - start in
  let fact () : Dense.t =
    match algo with
    | Logreg_a ->
      let w0 = Option.bind resumed (fun st -> Ck.dense st "w") in
      let on_iter = on_iter_for (fun w -> [ ("w", Ck.of_dense w) ]) in
      (F.Logreg.train ~alpha ~iters:remaining ?w0 ?on_iter t y).F.Logreg.w
    | Linreg_a ->
      let w0 = Option.bind resumed (fun st -> Ck.dense st "w") in
      let on_iter = on_iter_for (fun w -> [ ("w", Ck.of_dense w) ]) in
      F.Linreg.train_gd ~alpha ~iters:remaining ?w0 ?on_iter t y
    | Kmeans_a ->
      let centroids = Option.bind resumed (fun st -> Ck.dense st "centroids") in
      let on_iter = on_iter_for (fun c -> [ ("centroids", Ck.of_dense c) ]) in
      (F.Kmeans.train ~iters:remaining ?centroids ?on_iter ~k t)
        .F.Kmeans.centroids
    | Gnmf_a ->
      let init =
        Option.bind resumed (fun st ->
            match (Ck.dense st "w", Ck.dense st "h") with
            | Some w, Some h -> Some { F.Gnmf.w; h }
            | _ -> None)
      in
      let on_iter =
        on_iter_for (fun (f : F.Gnmf.factors) ->
            [ ("w", Ck.of_dense f.F.Gnmf.w); ("h", Ck.of_dense f.F.Gnmf.h) ])
      in
      (F.Gnmf.train ~iters:remaining ?init ?on_iter ~rank t).F.Gnmf.h
  in
  let mat () : Dense.t =
    let m = Materialize.to_regular t in
    match algo with
    | Logreg_a -> (M.Logreg.train ~alpha ~iters m y).M.Logreg.w
    | Linreg_a -> M.Linreg.train_gd ~alpha ~iters m y
    | Kmeans_a -> (M.Kmeans.train ~iters ~k m).M.Kmeans.centroids
    | Gnmf_a -> (M.Gnmf.train ~iters ~rank m).M.Gnmf.h
  in
  let trained =
    match path with
    | Factorized_path -> Some (run_path "factorized" fact)
    | Materialized_path ->
      ignore (run_path "materialized" mat) ;
      None
    | Both ->
      let wf = run_path "factorized" fact in
      let wm = run_path "materialized" mat in
      Fmt.pr "max |difference| between paths: %.3e@." (Dense.max_abs_diff wf wm) ;
      Some wf
  in
  (match (save, registry, trained) with
  | Some name, Some reg, Some w ->
    let artifact =
      match algo with
      | Logreg_a -> Morpheus_serve.Artifact.Logreg w
      | Linreg_a -> Morpheus_serve.Artifact.Linreg w
      | Kmeans_a -> Morpheus_serve.Artifact.Kmeans w
      | Gnmf_a -> assert false (* rejected above *)
    in
    let entry =
      Morpheus_serve.Registry.save ~dir:reg ~name
        ~schema_hash:(Morpheus_serve.Registry.schema_hash t)
        ~meta:
          [ ("algorithm", algo_name algo);
            ("iters", string_of_int iters);
            ("alpha", Printf.sprintf "%g" alpha);
            ("source", dir)
          ]
        artifact
    in
    Fmt.pr "saved %s to %s (%s)@." entry.Morpheus_serve.Registry.id reg
      (Morpheus_serve.Artifact.describe artifact)
  | _ -> ()) ;
  Fmt.pr "done.@."

let train_cmd =
  let algo =
    Arg.(value & opt algo_conv Logreg_a & info [ "algorithm"; "a" ]
           ~doc:"One of logreg, linreg, kmeans, gnmf.")
  in
  let path =
    Arg.(value & opt path_conv Both & info [ "path" ]
           ~doc:"Execution path: factorized, materialized, or both.")
  in
  let iters = Arg.(value & opt int 10 & info [ "iters" ] ~doc:"Iterations.") in
  let alpha = Arg.(value & opt float 1e-4 & info [ "alpha" ] ~doc:"Step size.") in
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"K-Means centroids.") in
  let rank = Arg.(value & opt int 5 & info [ "rank" ] ~doc:"GNMF rank.") in
  let save =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"NAME"
           ~doc:"Persist the factorized model to the registry under $(docv).")
  in
  let registry =
    Arg.(value & opt (some string) None & info [ "registry" ] ~docv:"DIR"
           ~doc:"Model registry directory (required with --save).")
  in
  let checkpoint =
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Snapshot trainer state to $(docv) (atomic; factorized path \
                 only). With --resume, continue from it; the resumed run is \
                 bitwise-identical to an uninterrupted one.")
  in
  let every =
    Arg.(value & opt int 1 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Snapshot every $(docv) iterations (the last iteration \
                 always snapshots).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Continue from --checkpoint if it exists (else start fresh).")
  in
  Cmd.v
    (cmd_info "train" ~doc:"Train an ML algorithm over the normalized data.")
    Term.(const train $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg $ algo $ path $ iters $ alpha $ k $ rank
          $ save $ registry $ checkpoint $ every $ resume)

(* ---- cv: ridge-lambda selection by k-fold cross-validation ---- *)

let cv dir fk pk target nominal sparse threads k lambdas =
  apply_threads threads ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let y = Option.get ds.Builder.target in
  let (best, best_score, scored), dt =
    Workload.Timing.time (fun () ->
        Ml_algs.Model_selection.select_ridge_lambda ~k ~lambdas t y)
  in
  List.iter
    (fun (lambda, score) -> Fmt.pr "lambda=%-10g mean val MSE %.6f@." lambda score)
    scored ;
  Fmt.pr "best: lambda=%g (MSE %.6f), %d-fold CV in %a@." best best_score k
    Workload.Timing.pp_seconds dt

let cv_cmd =
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of folds.") in
  let lambdas =
    Arg.(value & opt (list float) [ 0.01; 0.1; 1.0; 10.0; 100.0 ]
           & info [ "lambdas" ] ~doc:"Ridge penalties to evaluate.")
  in
  Cmd.v
    (cmd_info "cv" ~doc:"Select a ridge penalty by factorized k-fold cross-validation.")
    Term.(const cv $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg $ k $ lambdas)

(* ---- pca: factorized principal component analysis ---- *)

let pca dir fk pk target nominal sparse threads k =
  apply_threads threads ;
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  let p, dt = Workload.Timing.time (fun () -> Morpheus.Spectral.pca ~k t) in
  Fmt.pr "PCA (k=%d) over the normalized matrix in %a@." k
    Workload.Timing.pp_seconds dt ;
  Array.iteri
    (fun i v -> Fmt.pr "component %d: variance %.6f@." i v)
    p.Morpheus.Spectral.explained_variance ;
  Fmt.pr "explained variance ratio: %.4f@."
    (Morpheus.Spectral.explained_ratio t p)

let pca_cmd =
  let k = Arg.(value & opt int 5 & info [ "k" ] ~doc:"Number of components.") in
  Cmd.v
    (cmd_info "pca" ~doc:"Run factorized PCA over the normalized data.")
    Term.(const pca $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ threads_arg $ k)

(* ---- explain: show the rewrite plan and cost estimates ---- *)

let explain_op_conv =
  Arg.enum
    [ ("scalar", Morpheus.Explain.Scalar_op);
      ("rowsums", Morpheus.Explain.Row_sums);
      ("colsums", Morpheus.Explain.Col_sums);
      ("sum", Morpheus.Explain.Sum);
      ("lmm", Morpheus.Explain.Lmm 1);
      ("rmm", Morpheus.Explain.Rmm 1);
      ("crossprod", Morpheus.Explain.Crossprod);
      ("ginv", Morpheus.Explain.Ginv) ]

let explain dir fk pk target nominal sparse op =
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  print_endline (Morpheus.Explain.describe t) ;
  print_newline () ;
  print_endline (Morpheus.Explain.explain t op)

let explain_cmd =
  let op =
    Arg.(value & opt explain_op_conv (Morpheus.Explain.Lmm 1)
           & info [ "op" ]
               ~doc:"Operator: scalar, rowsums, colsums, sum, lmm, rmm, crossprod, ginv.")
  in
  Cmd.v
    (cmd_info "explain"
       ~doc:"Show the rewrite plan, cost estimates, and decision for an operator.")
    Term.(const explain $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ op)

(* ---- check: static plan checker over plan files ---- *)

(* Exit codes: 0 all checks clean (warnings allowed unless --strict),
   1 diagnostics with error severity (or warnings under --strict),
   2 unreadable/unparsable plan. *)
let check_plans expr_opt strict explain files =
  if expr_opt = None && files = [] then begin
    Fmt.epr "morpheus check: nothing to do (give plan FILEs and/or --expr)@." ;
    exit 2
  end ;
  let failed = ref false in
  let run_report name ~env e =
    let report = Morpheus.Check.analyze_abstract ~env e in
    print_string (Morpheus.Check.report_to_string ~name report) ;
    print_newline () ;
    if explain then begin
      (* narrate the plan the evaluator would actually run: relational
         pushdown (Ast.simplify) + chain/crossprod recognition, then
         re-analyze so the rule annotations describe the rewritten tree *)
      let optimized = Morpheus.Expr.optimize (Morpheus.Expr.simplify e) in
      let opt_report = Morpheus.Check.analyze_abstract ~env optimized in
      print_endline (Morpheus.Explain.describe_plan opt_report) ;
      print_newline ()
    end ;
    if not (Morpheus.Check.is_ok report) then failed := true ;
    if strict && Morpheus.Check.warnings report <> [] then failed := true
  in
  List.iter
    (fun file ->
      match Morpheus.Plan.parse_file file with
      | Error msg ->
        Fmt.epr "%s: %s@." file msg ;
        exit 2
      | Ok plan ->
        let env = Morpheus.Plan.env plan in
        (match Morpheus.Plan.checks plan with
        | [] -> Fmt.epr "%s: no check statements@." file
        | checks ->
          List.iter
            (fun (name, e) ->
              run_report (Printf.sprintf "%s: %s" file name) ~env e)
            checks))
    files ;
  (match expr_opt with
  | None -> ()
  | Some src -> (
    match Morpheus.Plan.parse_expr src with
    | Error msg ->
      Fmt.epr "--expr: %s@." msg ;
      exit 2
    | Ok e -> run_report src ~env:[] e)) ;
  if !failed then exit 1

let check_cmd =
  let files =
    Arg.(value & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Plan files to check (see docs/CHECKER.md for the syntax).")
  in
  let expr =
    Arg.(value & opt (some string) None & info [ "expr"; "e" ] ~docv:"EXPR"
           ~doc:"Check a single expression with no declared operands.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ]
           ~doc:"Treat warnings (W001-W004) as errors.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"Also print the optimized plan narration: relational \
                 pushdown (selection below join, projection pruning), \
                 fired rewrite rules, and standard-vs-factorized totals.")
  in
  Cmd.v
    (cmd_info "check"
       ~doc:"Statically check LA plans: shapes, rewrite preconditions, \
             per-node cost estimates, and structured diagnostics.")
    Term.(const check_plans $ expr $ strict $ explain $ files)

(* ---- export: persist a normalized dataset for serving ---- *)

let export dir fk pk target nominal sparse out =
  with_runtime_errors @@ fun () ->
  let ds = load ~dir ~fk ~pk ~target ~nominal ~sparse in
  let t = ds.Builder.matrix in
  Io.save ~dir:out t ;
  let n, d = Normalized.dims t in
  Fmt.pr "wrote normalized dataset %s (%d x %d, schema %s)@." out n d
    (Morpheus_serve.Registry.schema_hash t)

let export_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "out" ] ~docv:"DIR"
           ~doc:"Output directory for the normalized binary dataset.")
  in
  Cmd.v
    (cmd_info "export"
       ~doc:"Build the normalized matrix from CSVs and persist it in the \
             binary format morpheus serve scores from.")
    Term.(const export $ dir_arg $ fk_arg $ pk_arg $ target_arg $ nominal_arg
          $ sparse_arg $ out)

(* ---- serve: the scoring server ---- *)

let registry_arg =
  Arg.(required & opt (some string) None & info [ "registry" ] ~docv:"DIR"
         ~doc:"Model registry directory.")

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"ENDPOINT"
         ~doc:"Server endpoint: a Unix domain socket path or HOST:PORT.")

(* Endpoint strings are validated up front so a typo is a usage error
   (exit 2) with the offending string, not a runtime backtrace. *)
let check_endpoint ~cmd s =
  match Morpheus_serve.Endpoint.of_string_result s with
  | Ok _ -> ()
  | Error msg ->
    Fmt.epr "morpheus %s: %s@." cmd msg ;
    exit 2

let serve registry socket listen threads max_batch max_wait_ms queue_bound
    handlers cache_capacity deadline_ms breaker_threshold breaker_cooldown_ms
    lockdep replicate_from replicate_interval_ms drain_on limit_target_ms =
  apply_threads threads ;
  if lockdep then Analysis.Sync.enable_lockdep () ;
  let drain_on_term =
    match Option.map String.lowercase_ascii drain_on with
    | None -> false
    | Some "sigterm" -> true
    | Some other ->
      Fmt.epr "morpheus serve: --drain-on only supports SIGTERM, got %S@." other ;
      exit 2
  in
  (match limit_target_ms with
  | Some ms when ms <= 0.0 ->
    Fmt.epr "morpheus serve: --limit-target-ms must be > 0@." ;
    exit 2
  | _ -> ()) ;
  if max_batch < 1 || queue_bound < 1 || handlers < 1 || cache_capacity < 1
     || max_wait_ms < 0.0
  then begin
    Fmt.epr "morpheus serve: batch/queue/handler/cache sizes must be positive@." ;
    exit 2
  end ;
  if breaker_threshold < 1 || breaker_cooldown_ms < 0.0 then begin
    Fmt.epr "morpheus serve: breaker threshold must be >= 1, cooldown >= 0@." ;
    exit 2
  end ;
  let endpoint =
    match (listen, socket) with
    | Some ep, _ -> ep
    | None, Some path -> path
    | None, None ->
      Fmt.epr "morpheus serve: give --socket PATH or --listen HOST:PORT@." ;
      exit 2
  in
  check_endpoint ~cmd:"serve" endpoint ;
  if replicate_interval_ms <= 0.0 then begin
    Fmt.epr "morpheus serve: --replicate-interval-ms must be > 0@." ;
    exit 2
  end ;
  with_runtime_errors @@ fun () ->
  let puller =
    Option.map
      (fun primary ->
        Fmt.pr "morpheus serve: replicating models from %s every %gms@." primary
          replicate_interval_ms ;
        Morpheus_cluster.Replicate.start ~primary ~replica:registry
          ~interval:(replicate_interval_ms /. 1e3))
      replicate_from
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Morpheus_cluster.Replicate.stop puller)
    (fun () ->
      Morpheus_serve.Server.run
        { Morpheus_serve.Server.registry;
          socket = endpoint;
          max_batch;
          max_wait = max_wait_ms /. 1e3;
          queue_bound;
          handlers;
          cache_capacity;
          default_deadline_ms = deadline_ms;
          breaker_threshold;
          breaker_cooldown = breaker_cooldown_ms /. 1e3;
          drain_on_term;
          limiter_target_ms = limit_target_ms
        })

let serve_cmd =
  let socket =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix domain socket path to listen on.")
  in
  let listen =
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT"
           ~doc:"TCP endpoint to listen on (same protocol as --socket; \
                 port 0 picks an ephemeral port). Overrides --socket.")
  in
  let replicate_from =
    Arg.(value & opt (some string) None & info [ "replicate-from" ] ~docv:"DIR"
           ~doc:"Primary registry to pull model versions from into \
                 --registry (manifest-last commit point as the sync \
                 barrier); new versions start serving without a restart.")
  in
  let replicate_interval =
    Arg.(value & opt float 1000.0 & info [ "replicate-interval-ms" ]
           ~doc:"How often the replication puller syncs.")
  in
  let max_batch =
    Arg.(value & opt int 64 & info [ "max-batch" ]
           ~doc:"Requests per micro-batch before it closes.")
  in
  let max_wait =
    Arg.(value & opt float 2.0 & info [ "max-wait-ms" ]
           ~doc:"Micro-batch linger, milliseconds.")
  in
  let queue_bound =
    Arg.(value & opt int 1024 & info [ "queue-bound" ]
           ~doc:"Pending requests before overload shedding.")
  in
  let handlers =
    Arg.(value & opt int 4 & info [ "handlers" ]
           ~doc:"Connection-handler threads.")
  in
  let cache =
    Arg.(value & opt int 4 & info [ "cache" ]
           ~doc:"Normalized datasets kept in the LRU cache.")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "default-deadline-ms" ]
           ~doc:"Deadline applied to requests that carry none.")
  in
  let breaker_threshold =
    Arg.(value & opt int 5 & info [ "breaker-threshold" ]
           ~doc:"Consecutive dataset-load failures before that dataset's \
                 circuit opens.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 1000.0 & info [ "breaker-cooldown-ms" ]
           ~doc:"How long an open circuit refuses fast before probing again.")
  in
  let lockdep =
    Arg.(value & flag & info [ "lockdep" ]
           ~doc:"Enable the lock-order analyzer (same as MORPHEUS_LOCKDEP=1): \
                 record every lock acquisition and report ordering \
                 violations as they are first observed.")
  in
  let drain_on =
    Arg.(value & opt (some string) None & info [ "drain-on" ] ~docv:"SIGNAL"
           ~doc:"Drain instead of stopping on $(docv) (only SIGTERM is \
                 supported): health reports draining, queued work finishes, \
                 then the server exits on its own. SIGINT still stops \
                 immediately.")
  in
  let limit_target =
    Arg.(value & opt (some float) None & info [ "limit-target-ms" ]
           ~doc:"Latency target for the adaptive (AIMD) concurrency limit \
                 over score requests; omitted disables admission limiting.")
  in
  Cmd.v
    (cmd_info "serve"
       ~doc:"Serve models from a registry over a Unix domain socket or TCP \
             endpoint with micro-batched factorized scoring.")
    Term.(const serve $ registry_arg $ socket $ listen $ threads_arg
          $ max_batch $ max_wait $ queue_bound $ handlers $ cache $ deadline
          $ breaker_threshold $ breaker_cooldown $ lockdep $ replicate_from
          $ replicate_interval $ drain_on $ limit_target)

(* ---- route: the consistent-hash router over shard servers ---- *)

let route listen shards vnodes block handlers breaker_threshold
    breaker_cooldown_ms lockdep probe_interval_ms eject_after rejoin_after
    hedge hedge_rate hedge_burst limit_target_ms =
  if lockdep then Analysis.Sync.enable_lockdep () ;
  let parse_shard spec =
    match String.index_opt spec '=' with
    | Some i when i > 0 && i < String.length spec - 1 ->
      ( String.sub spec 0 i,
        String.sub spec (i + 1) (String.length spec - i - 1) )
    | _ ->
      Fmt.epr "morpheus route: --shard wants NAME=ENDPOINT, got %S@." spec ;
      exit 2
  in
  let shards = List.map parse_shard shards in
  if shards = [] then begin
    Fmt.epr "morpheus route: give at least one --shard NAME=ENDPOINT@." ;
    exit 2
  end ;
  check_endpoint ~cmd:"route" listen ;
  List.iter (fun (_, ep) -> check_endpoint ~cmd:"route" ep) shards ;
  if vnodes < 1 || block < 1 || handlers < 1 || breaker_threshold < 1
     || breaker_cooldown_ms < 0.0
  then begin
    Fmt.epr "morpheus route: vnodes/block/handlers/breaker must be positive@." ;
    exit 2
  end ;
  if eject_after < 1 || rejoin_after < 1 then begin
    Fmt.epr "morpheus route: --eject-after/--rejoin-after must be >= 1@." ;
    exit 2
  end ;
  if hedge_rate <= 0.0 || hedge_burst < 1.0 then begin
    Fmt.epr "morpheus route: --hedge-rate must be > 0, --hedge-burst >= 1@." ;
    exit 2
  end ;
  (match limit_target_ms with
  | Some ms when ms <= 0.0 ->
    Fmt.epr "morpheus route: --limit-target-ms must be > 0@." ;
    exit 2
  | _ -> ()) ;
  with_runtime_errors @@ fun () ->
  Morpheus_cluster.Router.run
    { Morpheus_cluster.Router.listen;
      shards;
      vnodes;
      block;
      handlers;
      breaker_threshold;
      breaker_cooldown = breaker_cooldown_ms /. 1e3;
      probe_interval = probe_interval_ms /. 1e3;
      probe_timeout = 1.0;
      suspect_after = 1;
      eject_after;
      rejoin_after;
      hedge;
      hedge_rate;
      hedge_burst;
      limiter_target_ms = limit_target_ms
    }

let route_cmd =
  let listen =
    Arg.(required & opt (some string) None & info [ "listen" ]
           ~docv:"ENDPOINT"
           ~doc:"Endpoint to listen on: HOST:PORT, tcp:HOST:PORT, or \
                 unix:PATH. Port 0 picks an ephemeral port.")
  in
  let shards =
    Arg.(value & opt_all string [] & info [ "shard" ] ~docv:"NAME=ENDPOINT"
           ~doc:"A shard server to route over (repeatable). NAME feeds the \
                 hash ring; ENDPOINT is the shard's --socket/--listen \
                 address.")
  in
  let vnodes =
    Arg.(value & opt int Morpheus_cluster.Ring.default_vnodes
         & info [ "vnodes" ]
             ~doc:"Virtual nodes per shard on the consistent-hash ring.")
  in
  let block =
    Arg.(value & opt int 64 & info [ "block" ]
           ~doc:"Row ids per placement block for scatter-gathered \
                 score_ids requests.")
  in
  let handlers =
    Arg.(value & opt int 4 & info [ "handlers" ]
           ~doc:"Connection-handler threads.")
  in
  let breaker_threshold =
    Arg.(value & opt int 3 & info [ "breaker-threshold" ]
           ~doc:"Consecutive transport failures before a shard's circuit \
                 opens.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 1000.0 & info [ "breaker-cooldown-ms" ]
           ~doc:"How long an open shard circuit refuses fast before probing \
                 again.")
  in
  let lockdep =
    Arg.(value & flag & info [ "lockdep" ]
           ~doc:"Enable the lock-order analyzer (same as MORPHEUS_LOCKDEP=1).")
  in
  let probe_interval =
    Arg.(value & opt float 250.0 & info [ "probe-interval-ms" ]
           ~doc:"How often the router health-probes each shard; 0 disables \
                 active probing (membership then only changes by operator \
                 drain/undrain).")
  in
  let eject_after =
    Arg.(value & opt int 3 & info [ "eject-after" ]
           ~doc:"Consecutive probe failures before a shard leaves the ring.")
  in
  let rejoin_after =
    Arg.(value & opt int 2 & info [ "rejoin-after" ]
           ~doc:"Consecutive probe successes before an ejected shard \
                 rejoins the ring.")
  in
  let hedge =
    Arg.(value & flag & info [ "hedge" ]
           ~doc:"Hedge slow idempotent reads: after the tracked p95 latency, \
                 send the same request to the next ring successor and take \
                 the first answer (responses stay bitwise-identical).")
  in
  let hedge_rate =
    Arg.(value & opt float 1.0 & info [ "hedge-rate" ]
           ~doc:"Hedge tokens per second per shard (the retry budget).")
  in
  let hedge_burst =
    Arg.(value & opt float 4.0 & info [ "hedge-burst" ]
           ~doc:"Hedge token bucket capacity per shard.")
  in
  let limit_target =
    Arg.(value & opt (some float) None & info [ "limit-target-ms" ]
           ~doc:"Latency target for the adaptive (AIMD) concurrency limit \
                 over routed score requests; omitted disables admission \
                 limiting.")
  in
  Cmd.v
    (cmd_info "route"
       ~doc:"Route scoring requests over shard servers with consistent \
             hashing, active health probing with dynamic membership, \
             per-shard circuit breakers, failover, hedged reads, \
             deadline-aware admission, and scatter-gather for id sets \
             that span shards.")
    Term.(const route $ listen $ shards $ vnodes $ block $ handlers
          $ breaker_threshold $ breaker_cooldown $ lockdep $ probe_interval
          $ eject_after $ rejoin_after $ hedge $ hedge_rate $ hedge_burst
          $ limit_target)

(* ---- score: client for the scoring server ---- *)

let protocol_error (code, message) =
  Fmt.epr "morpheus score: [%s] %s@." code message ;
  exit 1

let print_predictions = Array.iter (fun p -> Fmt.pr "%.17g@." p)

let score socket model rows dataset ids where deadline_ms op_ping op_list
    op_stats op_shutdown op_health drain undrain op_membership retries
    retry_budget_ms =
  let module C = Morpheus_serve.Client in
  let module P = Morpheus_serve.Protocol in
  let module J = Morpheus_serve.Json in
  if retries < 1 || retry_budget_ms <= 0.0 then begin
    Fmt.epr "morpheus score: --retries must be >= 1, --retry-budget-ms > 0@." ;
    exit 2
  end ;
  check_endpoint ~cmd:"score" socket ;
  if drain <> None && undrain <> None then begin
    Fmt.epr "morpheus score: give --drain or --undrain, not both@." ;
    exit 2
  end ;
  let policy =
    (* batch-level failures (dataset load blips, transient exec faults)
       surface as "rejected"; the CLI treats them as retryable *)
    { C.default_retry with
      attempts = retries;
      budget = retry_budget_ms /. 1e3;
      retry_codes = "rejected" :: C.default_retry.C.retry_codes
    }
  in
  with_runtime_errors @@ fun () ->
  if op_health then begin
    match C.health ~socket with
    | Error e -> protocol_error e
    | Ok j ->
      let status =
        Option.value ~default:"?" (Option.bind (J.member "status" j) J.to_str)
      in
      let num k =
        Option.value ~default:0 (Option.bind (J.member k j) J.to_int)
      in
      Fmt.pr "%s (open circuits %d, handler restarts %d)@." status
        (num "open_circuits") (num "handler_restarts") ;
      if status <> "ok" then exit 1
  end
  else
  C.with_client ~socket @@ fun c ->
  if op_ping then
    match C.call c P.Ping with
    | Ok _ -> Fmt.pr "pong@."
    | Error e -> protocol_error e
  else if op_stats then
    match C.call c P.Stats with
    | Ok j ->
      print_endline
        (J.to_string (Option.value ~default:J.Null (J.member "stats" j)))
    | Error e -> protocol_error e
  else if op_list then
    match C.call c P.List_models with
    | Error e -> protocol_error e
    | Ok j ->
      let models =
        Option.bind (J.member "models" j) J.to_list |> Option.value ~default:[]
      in
      List.iter
        (fun m ->
          let str k =
            Option.value ~default:"?" (Option.bind (J.member k m) J.to_str)
          in
          let num k =
            Option.value ~default:0 (Option.bind (J.member k m) J.to_int)
          in
          Fmt.pr "%-24s %-12s d=%d@." (str "id") (str "kind") (num "feature_dim"))
        models
  else if op_shutdown then
    match C.call c P.Shutdown with
    | Ok _ -> Fmt.pr "server stopping@."
    | Error e -> protocol_error e
  else if drain <> None || undrain <> None then begin
    (* an empty shard name means "this endpoint itself" (server-side
       drain); the router requires a shard name *)
    let named = function Some "" -> None | s -> s in
    let req =
      match (drain, undrain) with
      | Some s, _ -> P.Drain (named (Some s))
      | _, Some s -> P.Undrain (named (Some s))
      | None, None -> assert false
    in
    match C.call c req with
    | Error e -> protocol_error e
    | Ok j ->
      let draining =
        Option.value ~default:false (Option.bind (J.member "draining" j) J.to_bool)
      in
      Fmt.pr "%s@." (if draining then "draining" else "not draining")
  end
  else if op_membership then
    match C.call c P.Membership with
    | Error e -> protocol_error e
    | Ok j -> print_endline (J.to_string j)
  else begin
    let model =
      match model with
      | Some m -> m
      | None ->
        Fmt.epr "morpheus score: --model is required to score@." ;
        exit 2
    in
    (match where with
    | Some _ when dataset = None ->
      Fmt.epr "morpheus score: --where requires --dataset@." ;
      exit 2
    | Some _ when ids <> [] ->
      Fmt.epr "morpheus score: give --ids or --where, not both@." ;
      exit 2
    | _ -> ()) ;
    match (rows, dataset) with
    | [], None ->
      Fmt.epr
        "morpheus score: give --row (repeatable) or --dataset + \
         --ids/--where@." ;
      exit 2
    | _ :: _, Some _ ->
      Fmt.epr "morpheus score: give --row or --dataset, not both@." ;
      exit 2
    | rows, None -> (
      let rows = Array.of_list (List.map Array.of_list rows) in
      let result =
        if retries > 1 then
          C.score_rows_retry ~policy ~socket ~model ?deadline_ms rows
        else C.score_rows c ~model ?deadline_ms rows
      in
      match result with
      | Ok preds -> print_predictions preds
      | Error e -> protocol_error e)
    | [], Some ds -> (
      match where with
      | Some src -> (
        let pred =
          match Pred.parse src with
          | Ok p -> p
          | Error msg ->
            Fmt.epr "morpheus score: bad --where predicate: %s@." msg ;
            exit 2
        in
        let result =
          if retries > 1 then
            C.score_where_retry ~policy ~socket ~model ~dataset:ds ?deadline_ms
              pred
          else C.score_where c ~model ~dataset:ds ?deadline_ms pred
        in
        match result with
        | Ok preds -> print_predictions preds
        | Error e -> protocol_error e)
      | None -> (
        if ids = [] then begin
          Fmt.epr "morpheus score: --dataset requires --ids or --where@." ;
          exit 2
        end ;
        let ids = Array.of_list ids in
        let result =
          if retries > 1 then
            C.score_ids_retry ~policy ~socket ~model ~dataset:ds ?deadline_ms
              ids
          else C.score_ids c ~model ~dataset:ds ?deadline_ms ids
        in
        match result with
        | Ok preds -> print_predictions preds
        | Error e -> protocol_error e))
  end

let score_cmd =
  let model =
    Arg.(value & opt (some string) None & info [ "model" ] ~docv:"NAME"
           ~doc:"Model to score with: name (latest version) or name@vN.")
  in
  let row =
    Arg.(value & opt_all (list float) [] & info [ "row" ] ~docv:"V,V,..."
           ~doc:"A dense feature row (repeatable).")
  in
  let dataset =
    Arg.(value & opt (some string) None & info [ "dataset" ] ~docv:"DIR"
           ~doc:"Server-side normalized dataset directory to score from.")
  in
  let ids =
    Arg.(value & opt (list int) [] & info [ "ids" ] ~docv:"I,I,..."
           ~doc:"Row ids of --dataset to score.")
  in
  let where =
    Arg.(value & opt (some string) None & info [ "where" ] ~docv:"PRED"
           ~doc:"Score every --dataset row matching this predicate (e.g. \
                 'age >= 30 && region == 2'); the server selects the \
                 segment with per-table masks and one factorized \
                 select_rows. Mutually exclusive with --ids.")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline-ms" ]
           ~doc:"Per-request deadline, milliseconds.")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Health check only.") in
  let list_ = Arg.(value & flag & info [ "list" ] ~doc:"List served models.") in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the server's metrics JSON.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the server to stop.")
  in
  let health =
    Arg.(value & flag & info [ "health" ]
           ~doc:"Print the server's self-healing status (exit 1 unless ok).")
  in
  let drain =
    Arg.(value & opt (some string) None & info [ "drain" ] ~docv:"SHARD"
           ~doc:"Ask a router to drain $(docv) (take it out of the ring \
                 gracefully); against a server, an empty $(docv) drains the \
                 server itself.")
  in
  let undrain =
    Arg.(value & opt (some string) None & info [ "undrain" ] ~docv:"SHARD"
           ~doc:"Reverse --drain: put $(docv) back in the ring (or cancel a \
                 server-side drain with an empty $(docv)).")
  in
  let membership =
    Arg.(value & flag & info [ "membership" ]
           ~doc:"Print the control-plane membership snapshot (per-shard \
                 state machine, ring, probe statistics) as JSON.")
  in
  let retries =
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N"
           ~doc:"Total attempts per score request (transient errors retry \
                 with exponential backoff; responses are bitwise-identical \
                 across attempts).")
  in
  let retry_budget =
    Arg.(value & opt float 5000.0 & info [ "retry-budget-ms" ]
           ~doc:"Absolute time budget across all retry attempts.")
  in
  Cmd.v
    (cmd_info "score"
       ~doc:"Score rows against a running morpheus serve instance.")
    Term.(const score $ socket_arg $ model $ row $ dataset $ ids $ where
          $ deadline $ ping $ list_ $ stats $ shutdown $ health $ drain
          $ undrain $ membership $ retries $ retry_budget)

(* ---- models: offline registry listing ---- *)

let models registry recover =
  with_runtime_errors @@ fun () ->
  if recover then begin
    match Morpheus_serve.Registry.recover ~dir:registry with
    | [] -> Fmt.pr "no crash litter in %s@." registry
    | moved ->
      List.iter
        (fun (original, quarantined) ->
          Fmt.pr "quarantined %s -> %s@." original quarantined)
        moved
  end ;
  match Morpheus_serve.Registry.list ~dir:registry with
  | [] -> Fmt.pr "no models in %s@." registry
  | entries ->
    List.iter
      (fun (e : Morpheus_serve.Registry.entry) ->
        let m = e.manifest in
        Fmt.pr "%-24s %-12s d=%-5d %s@." e.id m.kind m.feature_dim
          (String.concat " "
             (List.map (fun (k, v) -> k ^ "=" ^ v) m.meta)))
      entries

let models_cmd =
  let recover =
    Arg.(value & flag & info [ "recover" ]
           ~doc:"First quarantine crash litter (orphaned *.tmp files, \
                 uncommitted version directories) into _quarantine/.")
  in
  Cmd.v
    (cmd_info "models" ~doc:"List the models in a registry directory.")
    Term.(const models $ registry_arg $ recover)

(* ---- lint: source-invariant checks over lib/ and bin/ ---- *)

let lint root =
  with_runtime_errors @@ fun () ->
  let cfg =
    { Analysis.Lint.root;
      protocol_ops = Morpheus_serve.Protocol.op_names;
      (* the two diagnostic catalogues, for the E205 uniqueness rule *)
      catalogues =
        [ ("Check", List.map Check.code_name Check.all_codes);
          ("Analysis", List.map Analysis.Diag.code_name Analysis.Diag.all_codes)
        ];
      relational_nodes = Ast.relational_node_names;
      router_ops = Morpheus_cluster.Router.routed_op_names
    }
  in
  match Analysis.Lint.run cfg with
  | [] -> Fmt.pr "lint: clean@."
  | findings ->
    List.iter
      (fun d -> print_endline (Analysis.Diag.to_string d))
      findings ;
    Fmt.epr "lint: %d finding(s)@." (List.length findings) ;
    exit 1

let lint_cmd =
  let root =
    Arg.(value & opt dir "." & info [ "root" ] ~docv:"DIR"
           ~doc:"Repository root containing lib/, bin/, and docs/.")
  in
  Cmd.v
    (cmd_info "lint"
       ~doc:"Check source-tree invariants the type system cannot: fault \
             points vs docs/ROBUSTNESS.md, protocol ops vs docs/SERVING.md, \
             raw concurrency/clock primitives outside their sanctioned \
             modules, routed ops and cluster fault points vs their doc \
             tables, and diagnostic-code uniqueness across catalogues.")
    Term.(const lint $ root)

(* ---- tune: sweep tile profiles for the blocked dense kernels ---- *)

let tune quick no_save =
  with_runtime_errors @@ fun () ->
  (match Tune.path () with
  | Some p -> Fmt.pr "profile file: %s@." p
  | None ->
    Fmt.pr "profile file: none (set MORPHEUS_TUNE_FILE or XDG_CACHE_HOME)@.") ;
  let winner, table = Blas.autotune ~quick ~now:Workload.Timing.now () in
  Fmt.pr "@[<v>%-44s %12s@]@." "candidate" "seconds" ;
  List.iter
    (fun ((p : Tune.profile), dt) ->
      let is_winner =
        p.mc = winner.Tune.mc && p.kc = winner.Tune.kc && p.nc = winner.Tune.nc
        && p.mr = winner.Tune.mr && p.nr = winner.Tune.nr
      in
      Fmt.pr "%-44s %12.4f%s@."
        (Printf.sprintf "mc=%d kc=%d nc=%d mr=%d nr=%d" p.mc p.kc p.nc p.mr
           p.nr)
        dt
        (if is_winner then "  <- winner" else ""))
    table ;
  Fmt.pr "winner: %s@." (Tune.describe winner) ;
  if no_save then Fmt.pr "not saved (--no-save)@."
  else
    match Tune.save winner with
    | Some path -> Fmt.pr "saved %s@." path
    | None -> Fmt.epr "warning: no writable profile path; profile not saved@."

let tune_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ]
           ~doc:"Sweep a reduced candidate set on a smaller workload \
                 (seconds instead of minutes; less precise).")
  in
  let no_save =
    Arg.(value & flag & info [ "no-save" ]
           ~doc:"Print the timing table without persisting the winner.")
  in
  Cmd.v
    (cmd_info "tune"
       ~doc:"Time candidate cache-blocking tile profiles for the dense \
             kernels and persist the winner (see MORPHEUS_TUNE in \
             docs/USAGE.md). Tile sizes are performance-only: every \
             profile produces bitwise-identical results.")
    Term.(const tune $ quick $ no_save)

let () =
  let doc = "factorized linear algebra over normalized data (Morpheus)" in
  let code =
    Cmd.eval ~term_err:2
      (Cmd.group (Cmd.info "morpheus" ~version ~doc)
         [ generate_cmd; info_cmd; train_cmd; cv_cmd; pca_cmd; explain_cmd;
           check_cmd; export_cmd; serve_cmd; route_cmd; score_cmd; models_cmd;
           lint_cmd; tune_cmd ])
  in
  (* cmdliner reports command-line misuse as its fixed 124; fold it into
     the documented usage-error code *)
  exit (if code = Cmd.Exit.cli_error then 2 else code)
